//! The differential contract of the batched replay loop: for every
//! cell of the figure grid and for adversarial random streams,
//!
//! > **batched replay ≡ live execution**, bit-identical
//! > (`Metrics::replay_eq`).
//!
//! "Batched" is `Machine::apply_batch` / `Machine::replay_segment` —
//! the *only* replay engine (one `Lanes` construction per batch,
//! contiguous same-CPU runs streamed without per-op dispatch,
//! including the pre-split run tables a `TraceStore` computes at
//! capture time). "Live" is the execution-driven run the trace was
//! captured from, and `per_op_replay` below drives the same live API
//! one op at a time — the thin wrapper standing in for the per-op
//! replay path this contract licensed retiring (`Machine::apply_op`/
//! `Machine::replay` are gone from the public API; the wrapper keeps
//! the suite's per-op leg as a differential reference). See
//! `docs/SWEEP.md`.
//!
//! The splitter's edge cases (empty traces, single-op segments,
//! CPU-alternating streams, same-CPU runs split across interned
//! segment boundaries) are pinned here too; the pure-function unit
//! tests live next to `split_cpu_runs` in `crates/core/src/shard.rs`.

use proptest::prelude::*;
use rnuma::config::MachineConfig;
use rnuma::experiment::{run_traced, TraceStore};
use rnuma::metrics::Metrics;
use rnuma::shard::{ShardedMachine, TraceOp};
use rnuma::Machine;
use rnuma_mem::addr::{CpuId, Va};
use rnuma_sim::Cycles;
use rnuma_workloads::{by_name, Scale, APP_NAMES};

#[path = "support.rs"]
mod support;
use support::{figure_configs, forced_pool};

fn per_op_replay(config: MachineConfig, ops: &[TraceOp]) -> Metrics {
    let mut m = Machine::new(config).expect("valid config");
    rnuma_bench::sweep::live_dispatch(&mut m, ops);
    m.metrics()
}

fn batched_replay(config: MachineConfig, ops: &[TraceOp]) -> Metrics {
    let mut m = Machine::new(config).expect("valid config");
    m.apply_batch(ops);
    m.metrics()
}

fn store_replay(config: MachineConfig, ops: &[TraceOp]) -> Metrics {
    // Through the interned arena: segmented at capture time, replayed
    // from the pre-split run tables.
    let mut store = TraceStore::new();
    let id = store.insert("synthetic", config, ops);
    store.replay_serial(id, config).metrics
}

/// Asserts the three replay modes agree with the live execution.
fn assert_three_way(live: &Metrics, config: MachineConfig, ops: &[TraceOp], label: &str) {
    let per_op = per_op_replay(config, ops);
    assert!(
        live.replay_eq(&per_op),
        "{label}: per-op replay diverged from live\nlive:   {live}\nper-op: {per_op}"
    );
    let batched = batched_replay(config, ops);
    assert!(
        live.replay_eq(&batched),
        "{label}: batched replay diverged from live\nlive:    {live}\nbatched: {batched}"
    );
    let store = store_replay(config, ops);
    assert!(
        live.replay_eq(&store),
        "{label}: segmented store replay diverged from live\nlive:  {live}\nstore: {store}"
    );
}

/// Every figure-grid cell: live execution on the cell's configuration,
/// its trace replayed per-op, batched, and through the interned store —
/// all four bit-identical.
#[test]
fn live_per_op_and_batched_agree_across_the_figure_grid() {
    for &app in &APP_NAMES {
        for config in figure_configs() {
            let mut w = by_name(app, Scale::Tiny).expect("known app");
            let (live, trace) = run_traced(config, &mut w);
            assert_three_way(
                &live.metrics,
                config,
                &trace,
                &format!("{app} on {}", config.protocol),
            );
        }
    }
}

/// The sweep direction of the contract: one stream captured on the
/// baseline, replayed per-op vs. batched on every *other* configuration
/// of the axis (where no live execution of that stream exists).
#[test]
fn cross_config_replay_agrees_per_op_vs_batched() {
    let configs = figure_configs();
    for app in ["em3d", "lu", "radix"] {
        let mut w = by_name(app, Scale::Tiny).expect("known app");
        let (_, trace) = run_traced(configs[0], &mut w);
        let mut store = TraceStore::new();
        let id = store.insert("cell", configs[0], &trace);
        for &config in &configs[1..] {
            let per_op = per_op_replay(config, &trace);
            let batched = batched_replay(config, &trace);
            assert!(
                per_op.replay_eq(&batched),
                "{app} on {}: batched diverged from per-op",
                config.protocol
            );
            let swept = store.replay_serial(id, config).metrics;
            assert!(
                per_op.replay_eq(&swept),
                "{app} on {}: store replay diverged from per-op",
                config.protocol
            );
        }
    }
}

/// The batched loop underneath the sharded executor: the single-shard /
/// pooled bypass (`run_segments` → `apply_batch`) and the pooled
/// windowed path both stay bit-identical to per-op serial replay.
#[test]
fn sharded_replay_over_batched_segments_stays_deterministic() {
    let configs = figure_configs();
    for app in ["em3d", "moldyn"] {
        let mut w = by_name(app, Scale::Tiny).expect("known app");
        let (_, trace) = run_traced(configs[0], &mut w);
        let mut store = TraceStore::new();
        let id = store.insert("cell", configs[0], &trace);
        for &config in &configs {
            let per_op = per_op_replay(config, &trace);
            // 1 shard: the executor bypasses window formation and runs
            // the whole stream through apply_batch.
            for shards in [1usize, 2, 4] {
                let mut sm =
                    ShardedMachine::with_pool(config, shards, forced_pool()).expect("valid config");
                sm.set_parallel_threshold(64);
                store.replay_sharded(id, &mut sm);
                assert!(
                    per_op.replay_eq(&sm.metrics()),
                    "{app} on {} diverged at {shards} shards",
                    config.protocol
                );
            }
        }
    }
}

/// Edge cases of the batch splitter, end to end: empty traces,
/// single-op streams, and CPU-alternating streams whose runs all have
/// length 1.
#[test]
fn splitter_edge_cases_replay_identically() {
    let config = figure_configs()[3]; // R-NUMA: the richest walk
                                      // Empty trace: all modes are a fresh machine.
    assert_three_way(
        &Machine::new(config).unwrap().metrics(),
        config,
        &[],
        "empty trace",
    );
    // Single-op stream.
    let one = vec![TraceOp::Access {
        cpu: CpuId(0),
        va: Va(0x1000),
        write: true,
    }];
    assert_three_way(&per_op_replay(config, &one), config, &one, "single op");
    // CPU-alternating stream: every same-CPU run has length 1, and the
    // CPUs span nodes so the walk crosses the machine.
    let mut alternating = vec![TraceOp::ArmFirstTouch];
    for i in 0..600u64 {
        let cpu = CpuId((i % 32) as u16);
        alternating.push(TraceOp::Access {
            cpu,
            va: Va(0x4000 + (i % 24) * 4096 + (i % 128) * 32),
            write: i % 3 == 0,
        });
        if i % 97 == 96 {
            alternating.push(TraceOp::Barrier);
        }
    }
    assert_three_way(
        &per_op_replay(config, &alternating),
        config,
        &alternating,
        "alternating CPUs",
    );
}

/// A same-CPU run longer than the store's segment size: the interned
/// arena splits it across segment boundaries, and the per-segment run
/// tables must still tile and replay exactly.
#[test]
fn segment_boundaries_splitting_a_run_replay_identically() {
    let config = figure_configs()[1]; // CC-NUMA
                                      // 10k+ ops from one CPU: spans three 4096-op segments.
    let mut ops = vec![TraceOp::ArmFirstTouch];
    for i in 0..10_000u64 {
        ops.push(TraceOp::Access {
            cpu: CpuId(0),
            va: Va(0x10_0000 + (i % 2048) * 32),
            write: false,
        });
        if i % 512 == 511 {
            ops.push(TraceOp::Think {
                cpu: CpuId(0),
                dur: Cycles(8),
            });
        }
    }
    let per_op = per_op_replay(config, &ops);
    let mut store = TraceStore::new();
    let id = store.insert("long-run", config, &ops);
    let mut segments = 0usize;
    store.for_each_batch(id, |_, _| segments += 1);
    assert!(
        segments > 1,
        "stream must span several segments for this test to bite"
    );
    let swept = store.replay_serial(id, config).metrics;
    assert!(
        per_op.replay_eq(&swept),
        "segment-split run diverged:\nper-op: {per_op}\nstore:  {swept}"
    );
    // The flat batched path agrees too.
    let batched = batched_replay(config, &ops);
    assert!(per_op.replay_eq(&batched));
}

/// A run table that does not tile its segment is rejected loudly.
#[test]
#[should_panic(expected = "run table does not tile")]
fn mismatched_run_table_panics() {
    let config = figure_configs()[0];
    let ops = [TraceOp::Access {
        cpu: CpuId(0),
        va: Va(0x1000),
        write: false,
    }];
    let mut m = Machine::new(config).unwrap();
    m.replay_segment(&ops, &[]);
}

proptest! {
    /// Random streams — random CPUs, small shared page pool, think
    /// time, barriers — executed live and replayed per-op, batched,
    /// and through the interned store: all bit-identical, on every
    /// figure protocol.
    #[test]
    fn random_streams_agree_live_per_op_batched(
        config_idx in 0usize..4,
        stream in prop::collection::vec(
            (0u16..32, 0u64..24, 0u64..128, 0u32..10),
            1..400,
        ),
    ) {
        let config = figure_configs()[config_idx];
        let mut ops = vec![TraceOp::ArmFirstTouch];
        for &(cpu, page, block, flags) in &stream {
            ops.push(TraceOp::Access {
                cpu: CpuId(cpu),
                va: Va(0x4000 + page * 4096 + block * 32),
                write: flags & 1 == 1,
            });
            if flags == 7 {
                ops.push(TraceOp::Barrier);
            }
            if flags == 8 {
                ops.push(TraceOp::Think { cpu: CpuId(cpu), dur: Cycles(block) });
            }
        }
        // Live: drive the machine API directly.
        let mut live = Machine::new(config).expect("valid config");
        for op in &ops {
            match *op {
                TraceOp::Access { cpu, va, write } => { live.access(cpu, va, write); }
                TraceOp::Think { cpu, dur } => live.advance(cpu, dur),
                TraceOp::Barrier => live.barrier_all(),
                TraceOp::ArmFirstTouch => live.arm_first_touch(),
            }
        }
        let live = live.metrics();
        let per_op = per_op_replay(config, &ops);
        prop_assert!(live.replay_eq(&per_op), "per-op replay diverged from live");
        let batched = batched_replay(config, &ops);
        prop_assert!(live.replay_eq(&batched), "batched replay diverged from live");
        let store = store_replay(config, &ops);
        prop_assert!(live.replay_eq(&store), "store replay diverged from live");
    }
}
