//! The determinism contract of the trace-once/replay-many sweep
//! driver: every cell a sweep produces is **bit-identical** to a serial
//! `Machine::replay` of the captured stream on that cell's
//! configuration — across the paper's entire figure grid, through the
//! interned `TraceStore` arena, and through the pool-backed sharded
//! executor at any shard count.
//!
//! See `docs/SWEEP.md` for the model these tests enforce and
//! `docs/DETERMINISM.md` for the underlying epoch/effect-ordering
//! argument. The `RNUMA_SHARDS`/`RNUMA_JOBS` environment combinations
//! are covered in `tests/sharded_env.rs` (environment mutation needs
//! its own process).

use rnuma::config::{MachineConfig, Protocol};
use rnuma::experiment::TraceStore;
use rnuma::shard::ShardedMachine;
use rnuma_bench::sweep_grid;
use rnuma_workloads::{by_name, Scale, APP_NAMES};
use std::sync::Arc;

#[path = "support.rs"]
mod support;
use support::{figure_configs, forced_pool};

/// The full figure grid through the real driver (`sweep_grid`): every
/// cell must be bit-identical to an independently captured and
/// serially replayed stream — the serial path of the sweep model.
#[test]
fn sweep_grid_cells_are_bit_identical_to_serial_replay() {
    let configs = figure_configs();
    let rows = sweep_grid(&APP_NAMES, &configs, Scale::Tiny);
    assert_eq!(rows.len(), APP_NAMES.len());
    for (&app, row) in APP_NAMES.iter().zip(&rows) {
        assert_eq!(row.len(), configs.len());
        let mut store = TraceStore::new();
        let mut w = by_name(app, Scale::Tiny).expect("known app");
        let (id, capture) = store.capture(configs[0], &mut w);
        assert!(
            capture.metrics.replay_eq(&row[0].metrics),
            "{app}: sweep capture cell diverged from a fresh capture"
        );
        for (c, &config) in configs.iter().enumerate().skip(1) {
            let serial = store.replay_serial(id, config);
            assert!(
                serial.metrics.replay_eq(&row[c].metrics),
                "{app} on {}: sweep cell diverged from serial replay\n\
                 serial: {}\nsweep:  {}",
                config.protocol,
                serial.metrics,
                row[c].metrics
            );
        }
    }
}

/// Replay cells shard deterministically: the pool-backed sharded
/// executor replaying straight from the interned arena's segments is
/// bit-identical to the serial replay, for every configuration of the
/// axis and several shard counts.
#[test]
fn replayed_cells_shard_deterministically_on_the_pool() {
    let pool = forced_pool();
    let configs = figure_configs();
    for app in ["em3d", "lu", "moldyn"] {
        let mut store = TraceStore::new();
        let mut w = by_name(app, Scale::Tiny).expect("known app");
        let (id, _) = store.capture(configs[0], &mut w);
        for &config in &configs {
            let serial = store.replay_serial(id, config);
            for shards in [2usize, 4] {
                let mut sm = ShardedMachine::with_pool(config, shards, Arc::clone(&pool))
                    .expect("valid config");
                sm.set_parallel_threshold(64);
                store.replay_sharded(id, &mut sm);
                assert!(
                    serial.metrics.replay_eq(&sm.metrics()),
                    "{app} on {} diverged at {shards} shards\n\
                     serial:  {}\nsharded: {}",
                    config.protocol,
                    serial.metrics,
                    sm.metrics()
                );
            }
        }
    }
    assert!(
        pool.jobs_executed() > 0,
        "the forced pool must actually have executed window jobs"
    );
}

/// Interning is invisible to replay: an interned store and a raw store
/// holding the same stream replay bit-identically on every
/// configuration.
#[test]
fn interned_and_raw_stores_replay_identically() {
    let configs = figure_configs();
    let mut w = by_name("radix", Scale::Tiny).expect("known app");
    let (_, trace) = rnuma::experiment::run_traced(configs[0], &mut w);
    let mut interned = TraceStore::new();
    let mut raw = TraceStore::raw();
    let a = interned.insert("radix", configs[0], &trace);
    let b = raw.insert("radix", configs[0], &trace);
    assert_eq!(interned.ops(a), raw.ops(b));
    assert!(interned.encoded_bytes() <= raw.encoded_bytes());
    assert!(interned.interning_ratio() <= raw.interning_ratio());
    for &config in &configs {
        let ra = interned.replay_serial(a, config);
        let rb = raw.replay_serial(b, config);
        assert!(
            ra.metrics.replay_eq(&rb.metrics),
            "interned vs raw replay diverged on {}",
            config.protocol
        );
    }
}

/// A one-configuration sweep (what fig5/table4-style binaries run) is
/// just the capture cell, and still matches a plain execution-driven
/// run bit-for-bit.
#[test]
fn single_config_sweep_equals_direct_run() {
    let config = MachineConfig::paper_base(Protocol::paper_ccnuma());
    let rows = sweep_grid(&["barnes"], &[config], Scale::Tiny);
    let mut w = by_name("barnes", Scale::Tiny).expect("known app");
    let direct = rnuma::experiment::run(config, &mut w);
    assert!(rows[0][0].metrics.replay_eq(&direct.metrics));
}
