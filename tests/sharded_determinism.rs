//! The determinism contract of intra-machine sharding: replaying a
//! run's trace on a [`ShardedMachine`] — any shard count — reproduces
//! the serial execution bit-for-bit, across the paper's entire figure
//! grid and on adversarial random reference streams.
//!
//! See `docs/DETERMINISM.md` for the execution model these tests
//! enforce.

use proptest::prelude::*;
use rnuma::config::{MachineConfig, Protocol};
use rnuma::experiment::{run_sharded_checked, run_traced};
use rnuma::shard::{ShardedMachine, TraceOp};
use rnuma::Machine;
use rnuma_mem::addr::{CpuId, Va};
use rnuma_workloads::{by_name, Scale, APP_NAMES};

#[path = "support.rs"]
mod support;
use support::{figure_protocols, forced_pool};

fn assert_sharded_matches_serial(app: &str, protocol: Protocol, shard_counts: &[usize]) {
    let config = MachineConfig::paper_base(protocol);
    let mut w = by_name(app, Scale::Tiny).expect("known app");
    let (report, trace) = run_traced(config, &mut w);
    for &shards in shard_counts {
        let mut sharded =
            ShardedMachine::with_pool(config, shards, forced_pool()).expect("valid config");
        sharded.set_parallel_threshold(64);
        sharded.run_trace(&trace);
        assert!(
            report.metrics.replay_eq(&sharded.metrics()),
            "{app} on {protocol} diverged at {shards} shards\n\
             serial:  {}\nsharded: {}",
            report.metrics,
            sharded.metrics()
        );
    }
}

/// The full figure grid: every Table-3 application on every finite
/// protocol of the shared fixture, serial vs. 2- and 4-sharded replay,
/// bit-identical.
#[test]
fn every_app_and_protocol_is_shard_deterministic() {
    let [_, finite @ ..] = figure_protocols();
    for app in APP_NAMES {
        for protocol in finite {
            assert_sharded_matches_serial(app, protocol, &[2, 4]);
        }
    }
}

/// The ideal (infinite block cache) baseline shards identically too —
/// it is the denominator of every normalized figure.
#[test]
fn ideal_baseline_is_shard_deterministic() {
    let [ideal, ..] = figure_protocols();
    for app in ["em3d", "moldyn", "ocean"] {
        assert_sharded_matches_serial(app, ideal, &[2, 4, 8]);
    }
}

/// `run_sharded_checked` is the self-checking entry point the
/// `RNUMA_SHARDS` plumbing uses; it must agree with a plain run.
#[test]
fn checked_run_reports_match_plain_runs() {
    let config = MachineConfig::paper_base(Protocol::paper_rnuma());
    let plain = rnuma::experiment::run(config, &mut by_name("lu", Scale::Tiny).unwrap());
    let checked = run_sharded_checked(config, &mut by_name("lu", Scale::Tiny).unwrap(), 4);
    assert!(plain.metrics.replay_eq(&checked.metrics));
}

fn arb_protocol() -> impl Strategy<Value = Protocol> {
    prop_oneof![
        Just(Protocol::paper_ccnuma()),
        Just(Protocol::paper_scoma()),
        Just(Protocol::paper_rnuma()),
        // Small caches force evictions, relocations, and cross-shard
        // write-backs — the executor's hardest paths.
        Just(Protocol::CcNuma {
            block_cache_bytes: Some(256),
        }),
        Just(Protocol::SComa {
            page_cache_bytes: 4 * 4096,
        }),
        Just(Protocol::RNuma {
            block_cache_bytes: 128,
            page_cache_bytes: 4 * 4096,
            threshold: 2,
        }),
    ]
}

proptest! {
    /// Randomized reference streams — random CPUs, a small shared page
    /// pool (heavy cross-shard traffic), random read/write mix, barriers
    /// — replay identically at 1, 2, and 4 shards on every protocol.
    #[test]
    fn random_streams_replay_identically(
        protocol in arb_protocol(),
        stream in prop::collection::vec(
            (0u16..32, 0u64..24, 0u64..128, 0u32..8),
            1..400,
        ),
    ) {
        let config = MachineConfig::paper_base(protocol);
        let mut ops = vec![TraceOp::ArmFirstTouch];
        for &(cpu, page, block, flags) in &stream {
            ops.push(TraceOp::Access {
                cpu: CpuId(cpu),
                va: Va(0x4000 + page * 4096 + block * 32),
                write: flags & 1 == 1,
            });
            if flags == 7 {
                ops.push(TraceOp::Barrier);
            }
        }
        let mut serial = Machine::new(config).expect("valid config");
        serial.apply_batch(&ops);
        let reference = serial.metrics();
        for shards in [1usize, 2, 4] {
            let mut sm =
                ShardedMachine::with_pool(config, shards, forced_pool()).expect("valid config");
            sm.set_parallel_threshold(16);
            sm.run_trace(&ops);
            prop_assert!(
                reference.replay_eq(&sm.metrics()),
                "random stream diverged at {} shards on {}",
                shards,
                protocol
            );
        }
    }
}
