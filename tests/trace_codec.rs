//! The trace-codec differential lane: the columnar, delta-encoded
//! `TraceStore` segment format is the **only** storage format, so its
//! decode must be *exact* — bit-identical ops out for ops in — and
//! every replay mode fed from it must agree with the live execution.
//!
//! Three layers of drills (see `docs/SWEEP.md`, "Trace encoding"):
//!
//! 1. **Codec round-trips** — unit and property tests over adversarial
//!    streams: descending walks (stride sign flips through the zigzag
//!    varints), CPU-alternating unit runs, multi-byte strides past
//!    2³², empty and single-op streams, and runs split across segment
//!    boundaries. Decoded ops must equal the originals exactly, and
//!    the per-segment run tables must tile their segments.
//! 2. **Three-way pinning** — encoded replay ≡ flat replay ≡ live
//!    execution (`Metrics::replay_eq`) across the full figure grid,
//!    plus streaming capture ≡ materialized insert.
//! 3. **Spill drills** — a store spilling profile bytes to disk
//!    (`RNUMA_TRACE_SPILL` / `TraceStore::spilled_to`) replays
//!    bit-identically, removes its file on drop, and fails *loudly*
//!    on a torn (truncated) spill file instead of decoding garbage.
//!
//! The footprint acceptance (encoded ≥ 4× smaller than the flat
//! 24-byte-per-op array on sweep workloads) and the interning
//! regression (shared page profiles actually dedup: ratio < 1.0) are
//! pinned here too.

use proptest::prelude::*;
use rnuma::config::MachineConfig;
use rnuma::experiment::{run_traced, TraceStore};
use rnuma::metrics::Metrics;
use rnuma::shard::{CpuRun, ShardedMachine, TraceOp};
use rnuma::Machine;
use rnuma_mem::addr::{CpuId, Va};
use rnuma_sim::Cycles;
use rnuma_workloads::{by_name, Scale, APP_NAMES};

#[path = "support.rs"]
mod support;
use support::{figure_configs, forced_pool};

/// Replays `ops` through the flat batched engine (no store involved).
fn flat_replay(config: MachineConfig, ops: &[TraceOp]) -> Metrics {
    let mut m = Machine::new(config).expect("valid config");
    m.apply_batch(ops);
    m.metrics()
}

/// Asserts `store`'s decoded form of `id` is exactly `ops`, and that
/// each decoded batch's run table tiles its op chunk.
fn assert_exact_decode(store: &TraceStore, id: rnuma::experiment::TraceId, ops: &[TraceOp]) {
    assert_eq!(
        store.decode(id).as_slice(),
        ops,
        "decoded stream is not bit-identical to the captured ops"
    );
    let mut rebuilt: Vec<TraceOp> = Vec::with_capacity(ops.len());
    store.for_each_batch(id, |chunk, runs| {
        let tiled: usize = runs
            .iter()
            .map(|r| match *r {
                CpuRun::Cpu { len, .. } => len as usize,
                CpuRun::Global => 1,
            })
            .sum();
        assert_eq!(tiled, chunk.len(), "run table does not tile its segment");
        rebuilt.extend_from_slice(chunk);
    });
    assert_eq!(
        rebuilt.as_slice(),
        ops,
        "batch chunks do not concatenate to the stream"
    );
}

/// The headline three-way: every cell of the figure grid, executed
/// live, replayed flat from the original op array, and replayed from
/// the encoded store (serial and sharded) — all bit-identical, with
/// the decode itself exact.
#[test]
fn encoded_flat_and_live_agree_across_the_figure_grid() {
    for &app in &APP_NAMES {
        for config in figure_configs() {
            let mut w = by_name(app, Scale::Tiny).expect("known app");
            let (live, trace) = run_traced(config, &mut w);
            let mut store = TraceStore::new();
            let id = store.insert("cell", config, &trace);
            assert_exact_decode(&store, id, &trace);

            let flat = flat_replay(config, &trace);
            assert!(
                live.metrics.replay_eq(&flat),
                "{app} on {}: flat replay diverged from live",
                config.protocol
            );
            let encoded = store.replay_serial(id, config).metrics;
            assert!(
                live.metrics.replay_eq(&encoded),
                "{app} on {}: encoded replay diverged from live\nlive:    {}\nencoded: {encoded}",
                config.protocol,
                live.metrics
            );
            let mut sm = ShardedMachine::with_pool(config, 4, forced_pool()).expect("valid config");
            sm.set_parallel_threshold(64);
            store.replay_sharded(id, &mut sm);
            assert!(
                live.metrics.replay_eq(&sm.metrics()),
                "{app} on {}: sharded encoded replay diverged from live",
                config.protocol
            );
        }
    }
}

/// Streaming capture (bounded-memory chunked encoding, no flat array)
/// produces the same encoded stream as materializing the trace first:
/// same content hash, same decode, same replay results.
#[test]
fn streaming_capture_matches_materialized_insert() {
    let configs = figure_configs();
    for app in ["em3d", "lu", "radix"] {
        let (live, trace) = run_traced(configs[0], &mut by_name(app, Scale::Tiny).unwrap());

        let mut streamed = TraceStore::new();
        let (sid, report) = streamed.capture(configs[0], &mut by_name(app, Scale::Tiny).unwrap());
        assert!(
            live.metrics.replay_eq(&report.metrics),
            "{app}: streaming capture perturbed the live run"
        );

        let mut materialized = TraceStore::new();
        let mid = materialized.insert("cell", configs[0], &trace);

        assert_eq!(streamed.ops(sid), materialized.ops(mid));
        assert_eq!(
            streamed.content_hash(sid),
            materialized.content_hash(mid),
            "{app}: streamed and materialized stores encoded different streams"
        );
        assert_exact_decode(&streamed, sid, &trace);
        for &config in &configs {
            let a = streamed.replay_serial(sid, config).metrics;
            let b = materialized.replay_serial(mid, config).metrics;
            assert!(
                a.replay_eq(&b),
                "{app} on {}: streamed vs materialized replay diverged",
                config.protocol
            );
        }
    }
}

/// The footprint acceptance: across the sweep bench workloads the
/// encoded store is at least 4× smaller than the flat 24-byte op
/// array it replaced.
#[test]
fn figure_grid_capture_compresses_at_least_4x() {
    let config = figure_configs()[0];
    let mut store = TraceStore::new();
    for &app in &APP_NAMES {
        store.capture(config, &mut by_name(app, Scale::Tiny).unwrap());
    }
    assert_eq!(
        store.flat_bytes(),
        store.captured_ops() * std::mem::size_of::<TraceOp>() as u64
    );
    assert!(
        store.footprint_ratio() >= 4.0,
        "columnar encoding must stay ≥ 4× smaller than the flat array \
         (got {:.2}×: {} flat vs {} encoded bytes over {} ops)",
        store.footprint_ratio(),
        store.flat_bytes(),
        store.encoded_bytes(),
        store.captured_ops()
    );
}

/// The interning regression (PR 7): profiles are interned at
/// page-*relative* granularity, so two workloads touching the same
/// relative patterns at different bases share storage — the ratio
/// actually drops below 1.0 instead of sitting at 1.000 forever.
#[test]
fn shared_page_profiles_intern_across_workloads() {
    let config = figure_configs()[0];
    let mut store = TraceStore::new();
    store.capture(config, &mut by_name("em3d", Scale::Tiny).unwrap());
    store.capture(config, &mut by_name("em3d", Scale::Tiny).unwrap());
    assert!(
        store.interning_ratio() < 1.0,
        "two captures of the same workload must share page profiles \
         (interning_ratio = {:.3})",
        store.interning_ratio()
    );

    // The base-relative property directly: the same walk shifted to a
    // different base address is byte-identical after delta encoding,
    // so the second stream's profiles all dedup against the first's.
    let walk = |base: u64| -> Vec<TraceOp> {
        (0..6000u64)
            .map(|i| TraceOp::Access {
                cpu: CpuId((i % 4) as u16),
                va: Va(base + (i % 512) * 32),
                write: i % 5 == 0,
            })
            .collect()
    };
    let mut shifted = TraceStore::new();
    shifted.insert("low", config, &walk(0x4000));
    let after_first = shifted.encoded_bytes();
    shifted.insert("high", config, &walk(0x40_0000));
    assert!(
        shifted.interning_ratio() < 1.0,
        "base-shifted identical walks must intern (ratio = {:.3})",
        shifted.interning_ratio()
    );
    // The second stream added run/segment metadata but no new profile
    // bytes worth a second copy of the first stream.
    assert!(
        shifted.encoded_bytes() < after_first * 2,
        "interning saved nothing: {} bytes after one stream, {} after two",
        after_first,
        shifted.encoded_bytes()
    );
}

/// Empty and single-op streams round-trip and replay exactly.
#[test]
fn empty_and_single_op_streams_round_trip() {
    let config = figure_configs()[3];
    let mut store = TraceStore::new();

    let empty = store.insert("empty", config, &[]);
    assert_exact_decode(&store, empty, &[]);
    let fresh = Machine::new(config).unwrap().metrics();
    assert!(fresh.replay_eq(&store.replay_serial(empty, config).metrics));

    for one in [
        vec![TraceOp::Access {
            cpu: CpuId(3),
            va: Va(0x2000),
            write: true,
        }],
        vec![TraceOp::Think {
            cpu: CpuId(0),
            dur: Cycles(17),
        }],
        vec![TraceOp::Barrier],
        vec![TraceOp::ArmFirstTouch],
    ] {
        let id = store.insert("one", config, &one);
        assert_exact_decode(&store, id, &one);
        let flat = flat_replay(config, &one);
        assert!(flat.replay_eq(&store.replay_serial(id, config).metrics));
    }
}

/// Stride sign flips: a strictly descending walk (every delta
/// negative through the zigzag coding), a sawtooth alternating sign
/// every op, and strides wider than 2³² (multi-byte varints) all
/// decode exactly. Addresses here are wild on purpose — this drills
/// the codec, not the machine, so only decode equality is asserted.
#[test]
fn sign_flipping_and_wide_strides_round_trip() {
    let mut store = TraceStore::new();
    let config = figure_configs()[0];

    let mut descending = Vec::new();
    let mut va = 0x7000_0000u64;
    for i in 0..9000u64 {
        va -= 32 + (i % 7) * 8;
        descending.push(TraceOp::Access {
            cpu: CpuId((i % 3) as u16),
            va: Va(va),
            write: i % 2 == 0,
        });
    }
    let id = store.insert("descending", config, &descending);
    assert_exact_decode(&store, id, &descending);

    let mut sawtooth = Vec::new();
    for i in 0..5000u64 {
        let va = if i % 2 == 0 {
            0x1_0000 + i
        } else {
            0xFFFF_0000 - i
        };
        sawtooth.push(TraceOp::Access {
            cpu: CpuId(0),
            va: Va(va),
            write: false,
        });
    }
    let id = store.insert("sawtooth", config, &sawtooth);
    assert_exact_decode(&store, id, &sawtooth);

    // Deltas past 2³² in both directions, including the u64 extremes:
    // the zigzag varints must carry the full 64-bit domain.
    let wide = vec![
        TraceOp::Access {
            cpu: CpuId(0),
            va: Va(0),
            write: false,
        },
        TraceOp::Access {
            cpu: CpuId(0),
            va: Va(u64::MAX),
            write: true,
        },
        TraceOp::Access {
            cpu: CpuId(0),
            va: Va(1 << 33),
            write: false,
        },
        TraceOp::Access {
            cpu: CpuId(1),
            va: Va(0xDEAD_BEEF_CAFE_F00D),
            write: true,
        },
        TraceOp::Barrier,
        TraceOp::Access {
            cpu: CpuId(1),
            va: Va(42),
            write: false,
        },
        TraceOp::Access {
            cpu: CpuId(0),
            va: Va(1 << 62),
            write: false,
        },
    ];
    let id = store.insert("wide", config, &wide);
    assert_exact_decode(&store, id, &wide);
}

/// A single same-CPU run far longer than one segment: the encoder
/// splits it across segment boundaries and the per-CPU base references
/// reset per segment, yet the decode tiles back exactly and replays
/// bit-identically to the flat engine.
#[test]
fn runs_split_across_segment_boundaries_round_trip() {
    let config = figure_configs()[1];
    let mut ops = vec![TraceOp::ArmFirstTouch];
    for i in 0..20_000u64 {
        ops.push(TraceOp::Access {
            cpu: CpuId(0),
            va: Va(0x10_0000 + (i % 4096) * 32),
            write: i % 9 == 0,
        });
    }
    let mut store = TraceStore::new();
    let id = store.insert("long", config, &ops);
    let mut segments = 0usize;
    store.for_each_batch(id, |_, _| segments += 1);
    assert!(segments >= 4, "stream must span several segments to bite");
    assert_exact_decode(&store, id, &ops);
    assert!(flat_replay(config, &ops).replay_eq(&store.replay_serial(id, config).metrics));
}

/// A store spilling profile bytes to disk decodes and replays exactly
/// like a resident store, reports its spilled footprint, and removes
/// the spill file when dropped.
#[test]
fn spilled_store_replays_bit_identical_and_cleans_up() {
    let dir = std::env::temp_dir().join(format!("rnuma-trace-codec-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let configs = figure_configs();
    let (live, trace) = run_traced(configs[0], &mut by_name("em3d", Scale::Tiny).unwrap());

    let mut resident = TraceStore::new();
    let rid = resident.insert("em3d", configs[0], &trace);
    assert_eq!(resident.spilled_bytes(), 0);
    assert!(resident.spill_path().is_none());

    let spill_path;
    {
        let mut spilled = TraceStore::spilled_to(&dir);
        let sid = spilled.insert("em3d", configs[0], &trace);
        spill_path = spilled
            .spill_path()
            .expect("spilled store has a file")
            .to_path_buf();
        assert!(spill_path.exists(), "spill file was never created");
        assert!(spilled.spilled_bytes() > 0, "no profile bytes were spilled");
        assert!(
            spilled.resident_bytes() < spilled.encoded_bytes(),
            "spilling must shrink the resident footprint"
        );
        assert_eq!(spilled.content_hash(sid), resident.content_hash(rid));
        assert_exact_decode(&spilled, sid, &trace);
        for &config in &configs {
            let a = spilled.replay_serial(sid, config).metrics;
            assert!(
                a.replay_eq(&resident.replay_serial(rid, config).metrics),
                "spilled vs resident replay diverged on {}",
                config.protocol
            );
            if config == configs[0] {
                assert!(
                    live.metrics.replay_eq(&a),
                    "spilled replay diverged from live"
                );
            }
        }
    }
    assert!(!spill_path.exists(), "spill file must be removed on drop");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The torn-file drill: a spill file truncated out from under the
/// store (a crashed writer, a full disk) fails **loudly** at decode —
/// never silently replaying garbage.
#[test]
#[should_panic(expected = "truncated or unreadable")]
fn torn_spill_file_fails_loudly() {
    let dir = std::env::temp_dir().join(format!("rnuma-trace-torn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let config = figure_configs()[0];
    let (_, trace) = run_traced(config, &mut by_name("em3d", Scale::Tiny).unwrap());
    let mut store = TraceStore::spilled_to(&dir);
    let id = store.insert("em3d", config, &trace);
    let path = store
        .spill_path()
        .expect("spilled store has a file")
        .to_path_buf();
    let len = std::fs::metadata(&path).unwrap().len();
    assert!(len > 0);
    // Tear the file: keep the first half, drop the tail.
    std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .unwrap()
        .set_len(len / 2)
        .unwrap();
    let _ = store.decode(id); // must panic
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Adversarial random streams — random CPUs, wandering addresses
    /// with sign-flipping strides up to 2⁴⁰, think time, barriers,
    /// first-touch arms — round-trip the codec exactly and tile their
    /// segments. Pure codec drill: addresses span the full wild range.
    #[test]
    fn adversarial_streams_round_trip_exactly(
        start in 0u64..(1 << 48),
        stream in prop::collection::vec(
            (0u16..32, 0u8..10, 0u64..(1u64 << 40)),
            1..600,
        ),
    ) {
        let config = figure_configs()[0];
        let mut ops = Vec::with_capacity(stream.len());
        let mut va = start;
        for &(cpu, kind, stride) in &stream {
            match kind {
                0 => ops.push(TraceOp::Barrier),
                1 => ops.push(TraceOp::ArmFirstTouch),
                2 | 3 => ops.push(TraceOp::Think { cpu: CpuId(cpu), dur: Cycles(stride) }),
                k => {
                    // Odd kinds walk down, even kinds walk up: dense
                    // sign flips through the zigzag coding.
                    va = if k % 2 == 1 {
                        va.wrapping_sub(stride)
                    } else {
                        va.wrapping_add(stride)
                    };
                    ops.push(TraceOp::Access { cpu: CpuId(cpu), va: Va(va), write: k == 4 });
                }
            }
        }
        let mut store = TraceStore::new();
        let id = store.insert("adversarial", config, &ops);
        prop_assert_eq!(store.decode(id).as_slice(), ops.as_slice());
        let mut rebuilt: Vec<TraceOp> = Vec::new();
        store.for_each_batch(id, |chunk, runs| {
            let tiled: usize = runs.iter().map(|r| match *r {
                CpuRun::Cpu { len, .. } => len as usize,
                CpuRun::Global => 1,
            }).sum();
            assert_eq!(tiled, chunk.len(), "run table does not tile its segment");
            rebuilt.extend_from_slice(chunk);
        });
        prop_assert_eq!(rebuilt.as_slice(), ops.as_slice());
    }

    /// Random *machine-realistic* streams: encoded replay stays
    /// bit-identical to flat replay on every figure protocol (the
    /// differential half, with addresses the machine actually maps).
    #[test]
    fn random_streams_replay_identically_encoded_vs_flat(
        config_idx in 0usize..4,
        stream in prop::collection::vec(
            (0u16..32, 0u64..24, 0u64..128, 0u32..10),
            1..400,
        ),
    ) {
        let config = figure_configs()[config_idx];
        let mut ops = vec![TraceOp::ArmFirstTouch];
        for &(cpu, page, block, flags) in &stream {
            ops.push(TraceOp::Access {
                cpu: CpuId(cpu),
                va: Va(0x4000 + page * 4096 + block * 32),
                write: flags & 1 == 1,
            });
            if flags == 7 {
                ops.push(TraceOp::Barrier);
            }
            if flags == 8 {
                ops.push(TraceOp::Think { cpu: CpuId(cpu), dur: Cycles(block) });
            }
        }
        let mut store = TraceStore::new();
        let id = store.insert("random", config, &ops);
        prop_assert_eq!(store.decode(id).as_slice(), ops.as_slice());
        let flat = flat_replay(config, &ops);
        let encoded = store.replay_serial(id, config).metrics;
        prop_assert!(
            flat.replay_eq(&encoded),
            "encoded replay diverged from flat:\nflat:    {}\nencoded: {}",
            flat,
            encoded
        );
    }
}
