//! The cross-engine differential suite pinning the sharded executors:
//! the shared-log engine (up-front span scan, per-shard consumption
//! cursors, no global epoch barrier), the pipelined engine (scan of
//! window N+1 overlapped with execution of window N), the
//! barrier-sharded engine (`RNUMA_EXEC=barrier` semantics), and the
//! serial machine must agree bit-for-bit across the paper's figure
//! grid and on adversarial random reference streams — at every shard
//! count and every directory sub-shard (bank) count. Directory banking
//! (`RNUMA_DIR_SHARDS`) is pure layout and must never be visible in
//! results.
//!
//! See `docs/DETERMINISM.md` for the execution model these tests
//! enforce.

use proptest::prelude::*;
use rnuma::config::{MachineConfig, Protocol};
use rnuma::experiment::run_traced;
use rnuma::shard::{ExecEngine, ShardedMachine, TraceOp};
use rnuma::Machine;
use rnuma_mem::addr::{CpuId, Va};
use rnuma_workloads::{by_name, Scale, APP_NAMES};

#[path = "support.rs"]
mod support;
use support::{figure_protocols, forced_pool};

const ENGINES: [ExecEngine; 3] = [ExecEngine::Log, ExecEngine::Pipeline, ExecEngine::Barrier];

/// Replays `trace` on all three engines at each `(shards, banks)` point
/// and asserts bit-identity with the serial reference, plus the
/// engines' own invariants: the barrier engine never prefetches a scan,
/// a fault-free pipelined run never invalidates one, and the log engine
/// does neither — its spans are scanned up-front, never speculatively.
fn assert_engines_match_serial(
    label: &str,
    config: MachineConfig,
    reference: &rnuma::metrics::Metrics,
    trace: &[TraceOp],
    shard_counts: &[usize],
    bank_counts: &[usize],
) {
    for &shards in shard_counts {
        for &banks in bank_counts {
            for engine in ENGINES {
                let mut sm =
                    ShardedMachine::with_pool(config, shards, forced_pool()).expect("valid config");
                sm.set_parallel_threshold(64);
                sm.set_dir_shards(banks);
                sm.set_engine(engine);
                sm.run_trace(trace);
                assert!(
                    reference.replay_eq(&sm.metrics()),
                    "{label}: {engine} engine diverged at {shards} shards, {banks} banks\n\
                     serial: {}\nengine: {}",
                    reference,
                    sm.metrics()
                );
                let stats = sm.stats();
                match engine {
                    ExecEngine::Log => {
                        assert_eq!(
                            (stats.scans_prefetched, stats.scans_invalidated),
                            (0, 0),
                            "{label}: log engine speculated a scan"
                        );
                        assert_eq!(
                            stats.windows, stats.log_spans,
                            "{label}: log engine ran a window outside the log"
                        );
                    }
                    ExecEngine::Pipeline => assert_eq!(
                        stats.scans_invalidated, 0,
                        "{label}: fault-free pipelined run discarded a scan"
                    ),
                    ExecEngine::Barrier => assert_eq!(
                        stats.scans_prefetched, 0,
                        "{label}: barrier engine prefetched a scan"
                    ),
                }
            }
        }
    }
}

/// The full figure grid: every Table-3 application on every finite
/// protocol, log vs. pipelined vs. barrier vs. serial at 2 and 4
/// shards, bit-identical. Banking stays at the default here; the bank
/// axis gets its own sweep below.
#[test]
fn every_app_and_protocol_is_engine_agnostic() {
    let [_, finite @ ..] = figure_protocols();
    for app in APP_NAMES {
        for protocol in finite {
            let config = MachineConfig::paper_base(protocol);
            let mut w = by_name(app, Scale::Tiny).expect("known app");
            let (report, trace) = run_traced(config, &mut w);
            assert_engines_match_serial(
                &format!("{app} on {protocol}"),
                config,
                &report.metrics,
                &trace,
                &[2, 4],
                &[rnuma::shard::DEFAULT_DIR_SHARDS],
            );
        }
    }
}

/// Directory banking is pure layout: sweeping the sub-shard count
/// across {1, 3, 8} on all three engines changes nothing observable,
/// including the ideal (infinite block cache) baseline every figure
/// normalizes to.
#[test]
fn directory_banking_is_invisible_across_engines() {
    let [ideal, _, _, rnuma_proto] = figure_protocols();
    for protocol in [ideal, rnuma_proto] {
        for app in ["em3d", "ocean"] {
            let config = MachineConfig::paper_base(protocol);
            let mut w = by_name(app, Scale::Tiny).expect("known app");
            let (report, trace) = run_traced(config, &mut w);
            assert_engines_match_serial(
                &format!("{app} on {protocol}"),
                config,
                &report.metrics,
                &trace,
                &[1, 4],
                &[1, 3, 8],
            );
        }
    }
}

/// The pipelined engine actually pipelines on the figure grid: a
/// multi-window trace must report prefetched scans, and stats other
/// than the scan counters must match the barrier engine exactly (the
/// two engines do the same work, in the same windows).
#[test]
fn pipelined_engine_overlaps_and_matches_barrier_stats() {
    let config = MachineConfig::paper_base(Protocol::paper_rnuma());
    let mut w = by_name("em3d", Scale::Tiny).expect("known app");
    let (_, trace) = run_traced(config, &mut w);

    let run = |engine: ExecEngine| {
        let mut sm = ShardedMachine::with_pool(config, 4, forced_pool()).expect("valid config");
        sm.set_parallel_threshold(64);
        sm.set_engine(engine);
        sm.run_trace(&trace);
        sm.stats()
    };
    let piped = run(ExecEngine::Pipeline);
    let barrier = run(ExecEngine::Barrier);

    assert!(piped.scans_prefetched > 0, "no scan was ever overlapped");
    assert_eq!(piped.scans_invalidated, 0);
    assert_eq!(piped.windows, barrier.windows);
    assert_eq!(piped.contained_ops, barrier.contained_ops);
    assert_eq!(piped.serialized_ops, barrier.serialized_ops);
    assert_eq!(piped.parallel_windows, barrier.parallel_windows);
}

/// The log engine actually retires barriers on the figure grid: it
/// folds every `ArmFirstTouch` into the scan instead of fencing, so it
/// serializes exactly `arms_folded` fewer ops than the barrier engine
/// while containing the identical op set, and all its shards consume
/// the full log (uniform cursors, no rollbacks on a fault-free run).
#[test]
fn log_engine_retires_arm_barriers_on_the_figure_grid() {
    let config = MachineConfig::paper_base(Protocol::paper_rnuma());
    let mut w = by_name("em3d", Scale::Tiny).expect("known app");
    let (_, trace) = run_traced(config, &mut w);

    let mut log_sm = ShardedMachine::with_pool(config, 4, forced_pool()).expect("valid config");
    log_sm.set_parallel_threshold(64);
    log_sm.set_engine(ExecEngine::Log);
    log_sm.run_trace(&trace);
    let mut barrier_sm = ShardedMachine::with_pool(config, 4, forced_pool()).expect("valid config");
    barrier_sm.set_parallel_threshold(64);
    barrier_sm.set_engine(ExecEngine::Barrier);
    barrier_sm.run_trace(&trace);

    let (log, barrier) = (log_sm.stats(), barrier_sm.stats());
    assert!(log.arms_folded > 0, "em3d arms first-touch at least once");
    assert_eq!(log.contained_ops, barrier.contained_ops);
    assert_eq!(log.serialized_ops + log.arms_folded, barrier.serialized_ops);
    assert_eq!(log.log_fences, log.serialized_ops);
    let cursors = log_sm.span_cursors();
    assert!(
        cursors.iter().all(|&c| c == cursors[0] && c >= 1),
        "shards must consume the whole log: {cursors:?}"
    );
    assert_eq!(log_sm.cursor_rollbacks().iter().sum::<u64>(), 0);
}

fn arb_protocol() -> impl Strategy<Value = Protocol> {
    prop_oneof![
        Just(Protocol::paper_ccnuma()),
        Just(Protocol::paper_scoma()),
        Just(Protocol::paper_rnuma()),
        // Small caches force evictions, relocations, and cross-shard
        // write-backs — the executor's hardest paths.
        Just(Protocol::CcNuma {
            block_cache_bytes: Some(256),
        }),
        Just(Protocol::SComa {
            page_cache_bytes: 4 * 4096,
        }),
        Just(Protocol::RNuma {
            block_cache_bytes: 128,
            page_cache_bytes: 4 * 4096,
            threshold: 2,
        }),
    ]
}

proptest! {
    // 1/2/4 shards x {1,3,8} banks x three engines is 27 replays per
    // case; trimmed case count keeps the suite's wall-clock in line
    // with the barrier-only suite while still crossing every axis.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized reference streams — random CPUs, a small shared page
    /// pool (heavy cross-shard traffic), random read/write mix,
    /// barriers — replay identically on all three engines at 1, 2, and
    /// 4 shards under 1, 3, and 8 directory banks, on every protocol.
    #[test]
    fn random_streams_are_engine_and_bank_agnostic(
        protocol in arb_protocol(),
        stream in prop::collection::vec(
            (0u16..32, 0u64..24, 0u64..128, 0u32..8),
            1..300,
        ),
    ) {
        let config = MachineConfig::paper_base(protocol);
        let mut ops = vec![TraceOp::ArmFirstTouch];
        for &(cpu, page, block, flags) in &stream {
            ops.push(TraceOp::Access {
                cpu: CpuId(cpu),
                va: Va(0x4000 + page * 4096 + block * 32),
                write: flags & 1 == 1,
            });
            if flags == 7 {
                ops.push(TraceOp::Barrier);
            }
        }
        let mut serial = Machine::new(config).expect("valid config");
        serial.apply_batch(&ops);
        let reference = serial.metrics();
        for shards in [1usize, 2, 4] {
            for banks in [1usize, 3, 8] {
                for engine in ENGINES {
                    let mut sm = ShardedMachine::with_pool(config, shards, forced_pool())
                        .expect("valid config");
                    sm.set_parallel_threshold(16);
                    sm.set_dir_shards(banks);
                    sm.set_engine(engine);
                    sm.run_trace(&ops);
                    prop_assert!(
                        reference.replay_eq(&sm.metrics()),
                        "random stream diverged: engine={} shards={} banks={} on {}",
                        engine,
                        shards,
                        banks,
                        protocol
                    );
                    if engine == ExecEngine::Log {
                        let stats = sm.stats();
                        prop_assert_eq!(
                            (stats.scans_prefetched, stats.scans_invalidated),
                            (0, 0),
                            "log engine speculated a scan"
                        );
                    }
                }
            }
        }
    }
}
