//! Suite-wide sanity invariants: every Table-3 application on every
//! protocol produces self-consistent metrics.

use rnuma::config::{MachineConfig, Protocol};
use rnuma::experiment::run;
use rnuma::metrics::Metrics;
use rnuma_workloads::{by_name, Scale, APP_NAMES};

fn metrics(app: &str, protocol: Protocol) -> Metrics {
    let mut w = by_name(app, Scale::Tiny).expect("known app");
    run(MachineConfig::paper_base(protocol), &mut w).metrics
}

#[test]
fn every_app_runs_and_reports_consistent_counts() {
    for app in APP_NAMES {
        for protocol in [
            Protocol::ideal(),
            Protocol::paper_ccnuma(),
            Protocol::paper_scoma(),
            Protocol::paper_rnuma(),
        ] {
            let m = metrics(app, protocol);
            assert!(m.references() > 0, "{app}/{protocol}: no references");
            assert!(m.exec_cycles.0 > 0, "{app}/{protocol}: no time");
            assert_eq!(
                m.l1_hits + m.l1_misses,
                m.references(),
                "{app}/{protocol}: hit/miss accounting broken"
            );
            assert!(
                m.refetches <= m.remote_fetches,
                "{app}/{protocol}: more refetches than fetches"
            );
            assert!(
                m.l1_hit_rate() > 0.0 && m.l1_hit_rate() < 1.0,
                "{app}/{protocol}: implausible L1 rate {}",
                m.l1_hit_rate()
            );
            assert_eq!(m.per_cpu_cycles.len(), 32);
            assert!(m.shared_pages() > 0, "{app}: nothing was shared");
        }
    }
}

#[test]
fn protocol_structures_match_modes() {
    for app in APP_NAMES {
        // CC-NUMA never uses a page cache; S-COMA never a block cache.
        let cc = metrics(app, Protocol::paper_ccnuma());
        assert_eq!(cc.page_cache_hits, 0, "{app}: CC-NUMA page-cache hits");
        assert_eq!(cc.os.relocations, 0);
        assert_eq!(cc.os.page_replacements, 0);

        let sc = metrics(app, Protocol::paper_scoma());
        assert_eq!(sc.block_cache_hits, 0, "{app}: S-COMA block-cache hits");
        assert_eq!(sc.os.relocations, 0);

        let ideal = metrics(app, Protocol::ideal());
        assert_eq!(ideal.refetches, 0, "{app}: the ideal machine refetched");
    }
}

#[test]
fn rnuma_is_never_catastrophically_worse_than_the_best() {
    // The paper's stability claim, with the analytical bound (2–3x) as
    // the acceptance threshold at Tiny scale.
    for app in APP_NAMES {
        let cc = metrics(app, Protocol::paper_ccnuma()).exec_cycles.0 as f64;
        let sc = metrics(app, Protocol::paper_scoma()).exec_cycles.0 as f64;
        let rn = metrics(app, Protocol::paper_rnuma()).exec_cycles.0 as f64;
        let best = cc.min(sc);
        assert!(
            rn <= best * 3.0,
            "{app}: R-NUMA {rn} vs best {best} breaks the competitive bound"
        );
    }
}

#[test]
fn first_touch_limits_remote_traffic() {
    // With first-touch placement, a large majority of references must
    // be satisfied without crossing the network for every application.
    for app in APP_NAMES {
        let m = metrics(app, Protocol::paper_ccnuma());
        let remote_fraction = m.remote_fetches as f64 / m.references() as f64;
        assert!(
            remote_fraction < 0.5,
            "{app}: {:.0}% of references went remote",
            remote_fraction * 100.0
        );
    }
}

#[test]
fn communication_heavy_apps_relocate_little() {
    let em3d = metrics("em3d", Protocol::paper_rnuma());
    let fft = metrics("fft", Protocol::paper_rnuma());
    // The paper: em3d and fft behave like CC-NUMA under R-NUMA.
    for (name, m) in [("em3d", &em3d), ("fft", &fft)] {
        assert!(
            m.os.relocations < 200,
            "{name} should not relocate heavily: {}",
            m.os.relocations
        );
    }
}

#[test]
fn reuse_heavy_apps_relocate_and_benefit() {
    for app in ["barnes", "moldyn", "lu"] {
        let rn = metrics(app, Protocol::paper_rnuma());
        assert!(rn.os.relocations > 0, "{app} must relocate reuse pages");
        assert!(rn.page_cache_hits > 0, "{app} must hit relocated pages");
    }
}
