//! `RNUMA_SHARDS` plumbing — and the rest of the executor's env
//! contract (`RNUMA_EXEC`, `RNUMA_PIPELINE`, `RNUMA_DIR_SHARDS`,
//! `RNUMA_JOBS`): the environment variables route every batch driver
//! job (`run_parallel`, and therefore `rnuma_bench::run_grid`) through
//! the self-checking sharded path, and misconfigured values follow one
//! warn-once-then-default contract.
//!
//! These tests mutate the process environment, so they live in their own
//! integration-test binary (their own process) and run serially.

use rnuma::config::{MachineConfig, Protocol};
use rnuma::experiment::{parallel_workers, run, run_env_sharded, run_parallel};
use rnuma::shard::{
    dir_shards_from_env, engine_from_env, exec_from_env, pipeline_from_env, shards_from_env,
    ExecEngine, ShardedMachine, DEFAULT_DIR_SHARDS, MAX_DIR_SHARDS,
};
use rnuma_bench::sweep_grid;
use rnuma_workloads::{by_name, Scale};

fn with_var<R>(name: &str, value: Option<&str>, body: impl FnOnce() -> R) -> R {
    match value {
        Some(v) => std::env::set_var(name, v),
        None => std::env::remove_var(name),
    }
    let out = body();
    std::env::remove_var(name);
    out
}

fn with_env<R>(value: Option<&str>, body: impl FnOnce() -> R) -> R {
    with_var("RNUMA_SHARDS", value, body)
}

fn with_jobs<R>(value: Option<&str>, body: impl FnOnce() -> R) -> R {
    with_var("RNUMA_JOBS", value, body)
}

/// The tests share one process, so environment mutation must be
/// serialized: one test owns all the scenarios.
#[test]
fn rnuma_shards_routing() {
    let config = MachineConfig::paper_base(Protocol::paper_rnuma());
    let baseline = run(config, &mut by_name("em3d", Scale::Tiny).unwrap());

    // Unset: no sharding requested.
    with_env(None, || assert_eq!(shards_from_env(), None));

    // RNUMA_SHARDS=1 is, by regression contract, the existing
    // single-threaded path: run_env_sharded must not enter the checked
    // sharded mode, and the report is the plain serial one.
    with_env(Some("1"), || {
        assert_eq!(shards_from_env(), Some(1));
        let r = run_env_sharded(config, &mut by_name("em3d", Scale::Tiny).unwrap());
        assert!(baseline.metrics.replay_eq(&r.metrics));
    });

    // RNUMA_SHARDS>1: every job self-checks sharded-vs-serial (a panic
    // here would mean the executor diverged) and still reports the
    // serial metrics bit-for-bit.
    with_env(Some("4"), || {
        assert_eq!(shards_from_env(), Some(4));
        let reports = run_parallel(&[0u8, 1u8], |_| {
            (config, by_name("em3d", Scale::Tiny).unwrap())
        });
        for r in &reports {
            assert!(baseline.metrics.replay_eq(&r.metrics));
        }
    });

    // Misconfiguration is uniform: an unparsable value and an explicit
    // zero both mean "no sharding" (with a one-time stderr warning),
    // never a crash and never a silent clamp to 1.
    with_env(Some("banana"), || assert_eq!(shards_from_env(), None));
    with_env(Some("0"), || assert_eq!(shards_from_env(), None));
    with_env(Some("-3"), || assert_eq!(shards_from_env(), None));

    // RNUMA_PIPELINE selects the engine: unset and the accepted "on"
    // spellings are pipelined (the default), the "off" spellings are
    // the barrier engine, anything else warns once and keeps the
    // default. A freshly built machine picks the choice up.
    with_var("RNUMA_PIPELINE", None, || assert!(pipeline_from_env()));
    for on in ["1", "on", "true"] {
        with_var("RNUMA_PIPELINE", Some(on), || assert!(pipeline_from_env()));
    }
    for off in ["0", "off", "false"] {
        with_var("RNUMA_PIPELINE", Some(off), || {
            assert!(!pipeline_from_env());
            let sm = ShardedMachine::new(config, 2).expect("valid config");
            assert!(!sm.pipelined());
        });
    }
    with_var("RNUMA_PIPELINE", Some("sideways"), || {
        assert!(pipeline_from_env());
    });

    // RNUMA_EXEC is the three-way engine selector and beats the legacy
    // RNUMA_PIPELINE switch when both are set; with neither set the
    // shared-log engine is the default. Garbage warns once and falls
    // through to that resolution. A freshly built machine picks the
    // choice up.
    with_var("RNUMA_EXEC", None, || {
        assert_eq!(exec_from_env(), None);
        with_var("RNUMA_PIPELINE", None, || {
            assert_eq!(engine_from_env(), ExecEngine::Log);
            let sm = ShardedMachine::new(config, 2).expect("valid config");
            assert_eq!(sm.engine(), ExecEngine::Log);
        });
        with_var("RNUMA_PIPELINE", Some("1"), || {
            assert_eq!(engine_from_env(), ExecEngine::Pipeline);
        });
        with_var("RNUMA_PIPELINE", Some("0"), || {
            assert_eq!(engine_from_env(), ExecEngine::Barrier);
        });
    });
    for (spelling, engine) in [
        ("log", ExecEngine::Log),
        ("pipeline", ExecEngine::Pipeline),
        ("pipelined", ExecEngine::Pipeline),
        ("barrier", ExecEngine::Barrier),
    ] {
        with_var("RNUMA_EXEC", Some(spelling), || {
            assert_eq!(exec_from_env(), Some(engine));
            assert_eq!(engine_from_env(), engine);
            let sm = ShardedMachine::new(config, 2).expect("valid config");
            assert_eq!(sm.engine(), engine);
        });
    }
    with_var("RNUMA_EXEC", Some("barrier"), || {
        with_var("RNUMA_PIPELINE", Some("1"), || {
            assert_eq!(
                engine_from_env(),
                ExecEngine::Barrier,
                "RNUMA_EXEC beats the legacy switch"
            );
        });
    });
    with_var("RNUMA_EXEC", Some("sideways"), || {
        assert_eq!(exec_from_env(), None, "garbage warns and selects nothing");
    });

    // RNUMA_JOBS follows the same warn-once misconfiguration contract
    // as the other numeric knobs (the shared env_usize helper): unset
    // means the host's parallelism, a valid count sticks (clamped to
    // the job count), and zero or garbage warn once to stderr and fall
    // back to the host default — never a silent coercion to serial.
    // The one-warning-per-process stderr shape is pinned subprocess-
    // style in tests/robust_env.rs.
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    with_jobs(None, || assert_eq!(parallel_workers(8), host.clamp(1, 8)));
    with_jobs(Some("3"), || {
        assert_eq!(parallel_workers(8), 3.clamp(1, 8));
        assert_eq!(parallel_workers(2), 2, "workers never exceed the jobs");
    });
    with_jobs(Some("1"), || assert_eq!(parallel_workers(8), 1));
    with_jobs(Some("0"), || {
        assert_eq!(parallel_workers(8), host.clamp(1, 8), "0 is not serial");
    });
    with_jobs(Some("banana"), || {
        assert_eq!(parallel_workers(8), host.clamp(1, 8));
    });

    // RNUMA_DIR_SHARDS banks the footprint directory: unset means the
    // default bank count, valid values stick (clamped to the maximum),
    // and zero or garbage warn once and fall back to the default.
    with_var("RNUMA_DIR_SHARDS", None, || {
        assert_eq!(dir_shards_from_env(), None);
        let sm = ShardedMachine::new(config, 2).expect("valid config");
        assert_eq!(sm.dir_shards(), DEFAULT_DIR_SHARDS);
    });
    with_var("RNUMA_DIR_SHARDS", Some("3"), || {
        assert_eq!(dir_shards_from_env(), Some(3));
        let sm = ShardedMachine::new(config, 2).expect("valid config");
        assert_eq!(sm.dir_shards(), 3);
    });
    with_var("RNUMA_DIR_SHARDS", Some("100000"), || {
        assert_eq!(dir_shards_from_env(), Some(MAX_DIR_SHARDS));
    });
    with_var("RNUMA_DIR_SHARDS", Some("0"), || {
        assert_eq!(dir_shards_from_env(), None);
    });
    with_var("RNUMA_DIR_SHARDS", Some("banana"), || {
        assert_eq!(dir_shards_from_env(), None);
    });

    // The trace-once/replay-many sweep driver honors the same
    // environment: every (RNUMA_JOBS, RNUMA_SHARDS) combination must
    // reproduce the env-free sweep bit-for-bit, with RNUMA_SHARDS>1
    // additionally self-checking each replay cell on the pool-backed
    // sharded executor.
    let configs = [
        MachineConfig::paper_base(Protocol::ideal()),
        MachineConfig::paper_base(Protocol::paper_rnuma()),
    ];
    let reference = sweep_grid(&["em3d"], &configs, Scale::Tiny);
    // The sweep's cells run the batched replay loop; pin them to a
    // per-op live-dispatch reference (the thin stand-in for the
    // retired per-op replay entry points) so every environment
    // combination below transitively proves batched ≡ per-op dispatch.
    let (_, trace) =
        rnuma::experiment::run_traced(configs[0], &mut by_name("em3d", Scale::Tiny).unwrap());
    for (r, &config) in reference[0].iter().zip(&configs) {
        let mut per_op = rnuma::Machine::new(config).unwrap();
        rnuma_bench::sweep::live_dispatch(&mut per_op, &trace);
        assert!(
            r.metrics.replay_eq(&per_op.metrics()),
            "sweep cell diverged from per-op replay on {}",
            config.protocol
        );
    }
    for (jobs, shards) in [
        (Some("1"), Some("4")),
        (Some("2"), Some("2")),
        (Some("2"), None),
    ] {
        let rows = with_jobs(jobs, || {
            with_env(shards, || sweep_grid(&["em3d"], &configs, Scale::Tiny))
        });
        for (r, b) in rows[0].iter().zip(&reference[0]) {
            assert!(
                r.metrics.replay_eq(&b.metrics),
                "sweep diverged under RNUMA_JOBS={jobs:?} RNUMA_SHARDS={shards:?}"
            );
        }
    }
}
