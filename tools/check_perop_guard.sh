#!/usr/bin/env bash
# Per-op replay guard: the per-op replay path is retired.
#
# `Machine::apply_op` is crate-private, and its only caller outside
# `crates/core/src/machine.rs` (where the batched entry points' tracing
# fallback lives) must remain the sharded executor's serial
# between-window leg, `ShardedMachine::exec_blocking`. A new caller
# means per-op dispatch crept back onto a replay path — replay through
# `Machine::apply_batch` / `Machine::replay_segment` instead, or drive
# the live API directly if you really are executing (not replaying).
#
# Usage: tools/check_perop_guard.sh

set -u
cd "$(dirname "$0")/.."

fail=0

# 1. The retired entry points must not be re-published (word-boundary
#    match: the deleted replay_segments was generic, so the name may be
#    followed by `<` rather than `(`).
if grep -nE 'pub fn (apply_op|replay|replay_segments)\b' crates/core/src/machine.rs; then
    echo "GUARD: a per-op replay entry point is public again on Machine"
    fail=1
fi

# 2. apply_op callers outside machine.rs: exactly the exec_blocking
#    site in shard.rs (comment lines don't count).
callers=$(grep -rn 'apply_op' --include='*.rs' crates tests examples \
    | grep -v '^crates/core/src/machine\.rs:' \
    | grep -vE '^[^:]+:[0-9]+:\s*//')
allowed='^crates/core/src/shard\.rs:[0-9]+:\s*self\.machine\.apply_op\(op\);$'
bad=$(printf '%s\n' "$callers" | grep -vE "$allowed" | grep -v '^$')
if [ -n "$bad" ]; then
    echo "GUARD: new per-op replay caller(s) outside exec_blocking:"
    echo "$bad"
    fail=1
fi
count=$(printf '%s\n' "$callers" | grep -cE "$allowed")
if [ "$count" -ne 1 ]; then
    echo "GUARD: expected exactly one exec_blocking call site, found $count"
    printf '%s\n' "$callers"
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "per-op replay guard FAILED"
    exit 1
fi
echo "per-op replay guard OK (apply_op confined to machine.rs + exec_blocking)"
