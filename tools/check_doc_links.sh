#!/usr/bin/env bash
# Docs link check: every repository-relative path referenced from the
# documentation surface must exist. Catches docs that drift from the
# tree (renamed tests, moved modules, deleted files).
#
# Checked references:
#   * markdown links  [text](path)  with a relative path (no scheme);
#   * backticked repo paths like `crates/core/src/shard.rs`,
#     `docs/SWEEP.md`, `tools/...`, `tests/...`, `examples/...`,
#     `.github/...` (directories may end with `/` or `...`).
#     `results/...` is exempt: it is generated at runtime and
#     git-ignored, so a fresh checkout legitimately lacks it.
#
# Usage: tools/check_doc_links.sh [file.md ...]
# With no arguments, checks the repo's documentation surface.

set -u
cd "$(dirname "$0")/.."

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
    files=(README.md ARCHITECTURE.md RESULTS.md ROADMAP.md docs/*.md)
fi

fail=0

check() {
    local doc="$1" ref="$2"
    # Strip anchors and trailing ellipsis/slash.
    ref="${ref%%#*}"
    ref="${ref%...}"
    ref="${ref%/}"
    [ -z "$ref" ] && return
    # Resolve relative to the referencing document's directory first
    # (markdown-link semantics), then the repo root (prose convention).
    local base
    base="$(dirname "$doc")"
    if [ ! -e "$base/$ref" ] && [ ! -e "$ref" ]; then
        echo "BROKEN: $doc -> $ref"
        fail=1
    fi
}

for doc in "${files[@]}"; do
    [ -f "$doc" ] || { echo "BROKEN: missing doc $doc"; fail=1; continue; }
    # 1. Markdown links with relative targets.
    while IFS= read -r ref; do
        case "$ref" in
            http://*|https://*|mailto:*|results/*) ;;
            *) check "$doc" "$ref" ;;
        esac
    done < <(grep -oE '\]\(([^)]+)\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')
    # 2. Backticked repo paths (known top-level roots only, so prose
    #    like `config.rs` or glob examples don't false-positive).
    while IFS= read -r ref; do
        case "$ref" in
            *'*'*) ;; # globs like crates/shims/{...} or wildcards
            *'{'*) ;;
            *) check "$doc" "$ref" ;;
        esac
    done < <(grep -oE '`(crates|docs|tools|tests|examples|\.github)/[^` ]*`' "$doc" | tr -d '`')
done

if [ "$fail" -ne 0 ]; then
    echo "docs link check FAILED"
    exit 1
fi
echo "docs link check OK (${#files[@]} files)"
