//! A comment/string/raw-string-aware Rust token scanner.
//!
//! The offline build environment has no crates.io, so `rnuma-lint`
//! cannot lean on `syn` or `proc-macro2`; this module hand-rolls the
//! small slice of Rust lexing the lints need:
//!
//! * identifiers, punctuation, and numeric literals as a flat token
//!   stream with line numbers;
//! * string literals (cooked, raw `r#"…"#`, byte, and C variants) with
//!   their *contents* preserved — the env-registry lint (E01) and the
//!   raw-env lint (D03) key on `"RNUMA_*"` literals;
//! * line and block comments stripped from the token stream but
//!   line comments *captured*, because the `// lint: allow(ID, reason)`
//!   escape grammar lives there;
//! * char literals vs. lifetimes disambiguated, so `'a` in generics
//!   never desynchronizes the string lexer;
//! * `#[cfg(test)]`-gated regions located by brace matching, so lints
//!   can scope themselves to result-bearing (non-test) code.
//!
//! The scanner is intentionally *approximate where it is safe to be*
//! (it does not expand macros or resolve paths) and *exact where the
//! lints need it* (comments and strings can never leak tokens).

/// What a token is. Punctuation keeps its character; identifier and
/// string tokens carry their text in [`Tok::text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Kind {
    /// An identifier or keyword (`fn`, `HashMap`, `var`, …).
    Ident,
    /// A single punctuation character (`{`, `:`, `.`, …).
    Punct(char),
    /// A string literal of any flavor; `text` is the raw contents
    /// between the delimiters (escapes unprocessed).
    Str,
    /// A numeric literal (value unused by the lints).
    Num,
    /// A character or byte literal.
    CharLit,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: Kind,
    /// Identifier text or string contents; empty for other kinds.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// `true` when this token is the identifier `name`.
    #[must_use]
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == Kind::Ident && self.text == name
    }

    /// `true` when this token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct(c)
    }
}

/// One captured `//` line comment (doc comments included).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text including the leading slashes.
    pub text: String,
}

/// A scanned source file: tokens, line comments, and the line ranges
/// covered by `#[cfg(test)]`-gated items.
#[derive(Debug)]
pub struct FileScan {
    /// Workspace-relative path (`/`-separated).
    pub rel: String,
    /// The token stream, comments and whitespace removed.
    pub toks: Vec<Tok>,
    /// Captured `//` comments, in file order.
    pub comments: Vec<Comment>,
    /// Inclusive `(first_line, last_line)` ranges of `#[cfg(test)]`
    /// items (typically the `mod tests { … }` block).
    pub test_regions: Vec<(u32, u32)>,
}

impl FileScan {
    /// `true` when `line` falls inside a `#[cfg(test)]` region.
    #[must_use]
    pub fn in_test(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| (a..=b).contains(&line))
    }

    /// The first token line strictly after `line` (for attaching an
    /// annotation comment to the code line that follows it).
    #[must_use]
    pub fn next_code_line(&self, line: u32) -> Option<u32> {
        self.toks.iter().map(|t| t.line).find(|&l| l > line)
    }
}

fn ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Lexes `src` (at workspace-relative path `rel`) into a [`FileScan`].
#[must_use]
pub fn scan(rel: &str, src: &str) -> FileScan {
    let b = src.as_bytes();
    let mut toks: Vec<Tok> = Vec::new();
    let mut comments: Vec<Comment> = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                comments.push(Comment {
                    line,
                    text: src[start..i].to_string(),
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                i += 2;
                let mut depth = 1u32;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                let tok_line = line;
                let (content, ni, nl) = lex_cooked_string(src, i + 1, line);
                toks.push(Tok {
                    kind: Kind::Str,
                    text: content,
                    line: tok_line,
                });
                i = ni;
                line = nl;
            }
            b'\'' => {
                let (tok, ni, nl) = lex_quote(src, i, line);
                toks.push(tok);
                i = ni;
                line = nl;
            }
            c if ident_start(c) => {
                let start = i;
                while i < b.len() && ident_cont(b[i]) {
                    i += 1;
                }
                let ident = &src[start..i];
                // Literal prefixes: r"", r#""#, b"", br"", c"", cr"", b''.
                let next = b.get(i).copied();
                let is_str_prefix = matches!(ident, "r" | "b" | "br" | "c" | "cr" | "rb");
                if is_str_prefix && (next == Some(b'"') || next == Some(b'#')) {
                    let raw = ident.contains('r');
                    if raw {
                        let (content, ni, nl) = lex_raw_string(src, i, line);
                        toks.push(Tok {
                            kind: Kind::Str,
                            text: content,
                            line,
                        });
                        i = ni;
                        line = nl;
                    } else if next == Some(b'"') {
                        let (content, ni, nl) = lex_cooked_string(src, i + 1, line);
                        toks.push(Tok {
                            kind: Kind::Str,
                            text: content,
                            line,
                        });
                        i = ni;
                        line = nl;
                    } else {
                        // `b#` / `c#` is not a literal; emit the ident.
                        toks.push(Tok {
                            kind: Kind::Ident,
                            text: ident.to_string(),
                            line,
                        });
                    }
                } else if ident == "b" && next == Some(b'\'') {
                    let (tok, ni, nl) = lex_quote(src, i, line);
                    toks.push(tok);
                    i = ni;
                    line = nl;
                } else {
                    toks.push(Tok {
                        kind: Kind::Ident,
                        text: ident.to_string(),
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric()
                        || b[i] == b'_'
                        || (b[i] == b'.'
                            && b.get(i + 1).is_some_and(u8::is_ascii_digit)
                            && b.get(i.wrapping_sub(1)) != Some(&b'.')))
                {
                    i += 1;
                }
                toks.push(Tok {
                    kind: Kind::Num,
                    text: String::new(),
                    line,
                });
            }
            _ => {
                toks.push(Tok {
                    kind: Kind::Punct(c as char),
                    text: String::new(),
                    line,
                });
                i += 1;
            }
        }
    }

    let test_regions = find_test_regions(&toks);
    FileScan {
        rel: rel.to_string(),
        toks,
        comments,
        test_regions,
    }
}

/// Lexes a cooked (escaped) string starting just past the opening
/// quote. Returns `(contents, index_past_close, line_after)`.
fn lex_cooked_string(src: &str, mut i: usize, mut line: u32) -> (String, usize, u32) {
    let b = src.as_bytes();
    let start = i;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => {
                return (src[start..i].to_string(), i + 1, line);
            }
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (src[start..].to_string(), i, line)
}

/// Lexes a raw string starting at the `#`s/quote after the `r`/`br`
/// prefix. Returns `(contents, index_past_close, line_after)`.
fn lex_raw_string(src: &str, mut i: usize, mut line: u32) -> (String, usize, u32) {
    let b = src.as_bytes();
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&b'"') {
        // Not actually a raw string (e.g. `r#ident`); treat as empty.
        return (String::new(), i, line);
    }
    i += 1;
    let start = i;
    while i < b.len() {
        if b[i] == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b[i] == b'"' {
            let close = &b[i + 1..];
            if close.len() >= hashes && close[..hashes].iter().all(|&h| h == b'#') {
                return (src[start..i].to_string(), i + 1 + hashes, line);
            }
        }
        i += 1;
    }
    (src[start..].to_string(), i, line)
}

/// Lexes the token starting at a `'` (or `b'`): a char/byte literal or
/// a lifetime. Returns `(token, index_past, line_after)`.
fn lex_quote(src: &str, at: usize, line: u32) -> (Tok, usize, u32) {
    let b = src.as_bytes();
    // Position of the opening quote (skip a `b` prefix).
    let q = if b[at] == b'\'' { at } else { at + 1 };
    let after = q + 1;
    if b.get(after) == Some(&b'\\') {
        // Escaped char literal: scan to the closing quote.
        let mut i = after + 1;
        while i < b.len() && b[i] != b'\'' {
            i += if b[i] == b'\\' { 2 } else { 1 };
        }
        return (
            Tok {
                kind: Kind::CharLit,
                text: String::new(),
                line,
            },
            (i + 1).min(b.len()),
            line,
        );
    }
    let first = b.get(after).copied().unwrap_or(b' ');
    if ident_start(first) || first.is_ascii_digit() {
        // `'a'` is a char literal; `'a` / `'static` is a lifetime.
        let mut i = after;
        while i < b.len() && ident_cont(b[i]) {
            i += 1;
        }
        if b.get(i) == Some(&b'\'') {
            return (
                Tok {
                    kind: Kind::CharLit,
                    text: String::new(),
                    line,
                },
                i + 1,
                line,
            );
        }
        return (
            Tok {
                kind: Kind::Lifetime,
                text: src[after..i].to_string(),
                line,
            },
            i,
            line,
        );
    }
    // Punctuation char literal like `'('`, `'\u{..}'` handled above.
    if b.get(after + 1) == Some(&b'\'') {
        return (
            Tok {
                kind: Kind::CharLit,
                text: String::new(),
                line,
            },
            after + 2,
            line,
        );
    }
    // A lone quote (macro land); emit as punctuation.
    (
        Tok {
            kind: Kind::Punct('\''),
            text: String::new(),
            line,
        },
        after,
        line,
    )
}

/// Finds `#[cfg(test)]`-gated items by matching the braces of the item
/// that follows the attribute.
fn find_test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if is_cfg_test_at(toks, i) {
            let start_line = toks[i].line;
            // Skip to the item's opening brace (or `;` for `mod t;`).
            let mut j = i + 7;
            while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('{') {
                let mut depth = 0i32;
                while j < toks.len() {
                    if toks[j].is_punct('{') {
                        depth += 1;
                    } else if toks[j].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                let end_line = toks.get(j).map_or(start_line, |t| t.line);
                out.push((start_line, end_line));
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// `true` when tokens at `i` spell exactly `#[cfg(test)]`.
fn is_cfg_test_at(toks: &[Tok], i: usize) -> bool {
    toks.len() > i + 6
        && toks[i].is_punct('#')
        && toks[i + 1].is_punct('[')
        && toks[i + 2].is_ident("cfg")
        && toks[i + 3].is_punct('(')
        && toks[i + 4].is_ident("test")
        && toks[i + 5].is_punct(')')
        && toks[i + 6].is_punct(']')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_hide_tokens() {
        let s = scan(
            "x.rs",
            "// HashMap in comment\nlet s = \"HashMap::new()\"; /* var(\"RNUMA_X\") */ fn f() {}",
        );
        assert!(!s.toks.iter().any(|t| t.is_ident("HashMap")));
        assert!(!s.toks.iter().any(|t| t.is_ident("var")));
        assert!(s.toks.iter().any(|t| t.is_ident("fn")));
        assert_eq!(s.comments.len(), 1);
    }

    #[test]
    fn string_contents_are_preserved() {
        let s = scan("x.rs", r#"let v = std::env::var("RNUMA_SHARDS");"#);
        let lit = s.toks.iter().find(|t| t.kind == Kind::Str).unwrap();
        assert_eq!(lit.text, "RNUMA_SHARDS");
    }

    #[test]
    fn raw_strings_and_hash_delimiters() {
        let s = scan("x.rs", r###"let v = r#"quote " inside RNUMA_A"# ;"###);
        let lit = s.toks.iter().find(|t| t.kind == Kind::Str).unwrap();
        assert!(lit.text.contains("RNUMA_A"));
        assert!(s.toks.last().unwrap().is_punct(';'));
    }

    #[test]
    fn lifetimes_do_not_break_the_lexer() {
        let s = scan("x.rs", "fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(
            s.toks.iter().filter(|t| t.kind == Kind::Lifetime).count(),
            3
        );
        // Lexer stayed in sync: the body tokens are visible.
        assert!(s.toks.iter().any(|t| t.is_ident("str")));
    }

    #[test]
    fn char_literals_are_not_lifetimes() {
        let s = scan("x.rs", r"let c = 'x'; let n = '\n'; let q = '\'';");
        assert_eq!(s.toks.iter().filter(|t| t.kind == Kind::CharLit).count(), 3);
    }

    #[test]
    fn cfg_test_regions_cover_the_module() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let s = scan("x.rs", src);
        assert_eq!(s.test_regions.len(), 1);
        assert!(!s.in_test(1));
        assert!(s.in_test(4));
        assert!(!s.in_test(6));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let s = scan("x.rs", "for i in 0..10 { let f = 1.5e3; }");
        assert!(s.toks.iter().any(|t| t.is_punct('.')));
        assert_eq!(s.toks.iter().filter(|t| t.kind == Kind::Num).count(), 3);
    }
}
