//! `rnuma-lint` — the workspace determinism & robustness static pass.
//!
//! Walks every workspace `.rs` file (under `crates/`, `tests/`, and
//! `examples/`) and enforces the project invariants as named lints
//! with `file:line` diagnostics. See `docs/LINTS.md` for the lint
//! catalogue, the `// lint: allow(ID, reason)` escape grammar, and how
//! to add a lint.
//!
//! ```text
//! rnuma-lint [--check] [--format text|json] [--root DIR] [FILE ...]
//! ```
//!
//! * `--check` (and the no-argument default) scans the whole
//!   workspace, including the global lints (E01 registry cross-check,
//!   P01 call-site census), and exits nonzero on any finding.
//! * Explicit `FILE` arguments restrict the scan to those files;
//!   the global lints are skipped because they need the whole tree.
//! * `--format json` emits machine-readable findings + escape
//!   inventory instead of text.
//!
//! Exit status: `0` clean, `1` findings, `2` usage or I/O error.

#![forbid(unsafe_code)]

mod lints;
mod scan;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut format_json = false;
    let mut root: Option<PathBuf> = None;
    let mut explicit: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {} // the default behavior, named for CI readability
            "--format" => match args.next().as_deref() {
                Some("json") => format_json = true,
                Some("text") => format_json = false,
                other => return usage(&format!("--format wants text|json, got {other:?}")),
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root wants a directory"),
            },
            "--help" | "-h" => {
                println!(
                    "rnuma-lint [--check] [--format text|json] [--root DIR] [FILE ...]\n\
                     Workspace determinism & robustness lints; see docs/LINTS.md."
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => return usage(&format!("unknown flag {flag:?}")),
            path => explicit.push(path.to_string()),
        }
    }

    let root = match root.map_or_else(find_workspace_root, Ok) {
        Ok(r) => r,
        Err(e) => return usage(&e),
    };

    let full_scan = explicit.is_empty();
    let mut files: Vec<(String, String)> = Vec::new();
    if full_scan {
        for top in ["crates", "tests", "examples"] {
            collect_rs_files(&root, &root.join(top), &mut files);
        }
        files.sort_by(|a, b| a.0.cmp(&b.0));
    } else {
        for path in &explicit {
            let p = PathBuf::from(path);
            let abs = if p.is_absolute() { p } else { root.join(&p) };
            match std::fs::read_to_string(&abs) {
                Ok(src) => files.push((rel_to(&root, &abs), src)),
                Err(e) => return usage(&format!("cannot read {}: {e}", abs.display())),
            }
        }
    }

    let readme = if full_scan {
        match std::fs::read_to_string(root.join("README.md")) {
            Ok(s) => Some(s),
            Err(e) => return usage(&format!("cannot read README.md under --root: {e}")),
        }
    } else {
        None
    };

    let analysis = lints::analyze(&files, readme.as_deref());
    if format_json {
        print_json(&analysis);
    } else {
        print_text(&analysis, files.len());
    }
    if analysis.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("rnuma-lint: {msg}");
    ExitCode::from(2)
}

/// The nearest ancestor of the current directory whose `Cargo.toml`
/// declares a `[workspace]` — the scan root when `--root` is absent.
fn find_workspace_root() -> Result<PathBuf, String> {
    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    for dir in cwd.ancestors() {
        let manifest = dir.join("Cargo.toml");
        if let Ok(s) = std::fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return Ok(dir.to_path_buf());
            }
        }
    }
    Err("no workspace Cargo.toml above the current directory (use --root)".into())
}

/// Recursively collects `.rs` files under `dir`, skipping build
/// output. Paths are stored workspace-relative with `/` separators.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name != "target" && !name.starts_with('.') {
                collect_rs_files(root, &path, out);
            }
        } else if name.ends_with(".rs") {
            if let Ok(src) = std::fs::read_to_string(&path) {
                out.push((rel_to(root, &path), src));
            }
        }
    }
}

fn rel_to(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn print_text(a: &lints::Analysis, files: usize) {
    for f in &a.findings {
        println!("{}:{}: {} {}", f.file, f.line, f.id, f.msg);
    }
    if !a.allows.is_empty() {
        println!("escape inventory ({} annotation(s)):", a.allows.len());
        for al in &a.allows {
            let used = if al.used { "" } else { " (unused)" };
            println!(
                "  allow {} {}:{}{} — {}",
                al.id, al.file, al.line, used, al.reason
            );
        }
    }
    println!(
        "rnuma-lint: {} finding(s) across {} file(s)",
        a.findings.len(),
        files
    );
}

fn print_json(a: &lints::Analysis) {
    let mut out = String::from("{\"ok\":");
    out.push_str(if a.findings.is_empty() {
        "true"
    } else {
        "false"
    });
    out.push_str(",\"findings\":[");
    for (i, f) in a.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"file\":{},\"line\":{},\"msg\":{}}}",
            json_str(&f.id),
            json_str(&f.file),
            f.line,
            json_str(&f.msg)
        ));
    }
    out.push_str("],\"allows\":[");
    for (i, al) in a.allows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"file\":{},\"line\":{},\"used\":{},\"reason\":{}}}",
            json_str(&al.id),
            json_str(&al.file),
            al.line,
            al.used,
            json_str(&al.reason)
        ));
    }
    out.push_str("]}");
    println!("{out}");
}

/// Minimal JSON string encoder (the diagnostics are ASCII-safe by
/// construction; control characters are escaped defensively).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
