//! The project lints and the analysis driver.
//!
//! Each lint is a named invariant of the workspace's determinism or
//! robustness contract (see `docs/LINTS.md` for the rationale and
//! `docs/DETERMINISM.md` / `docs/ROBUSTNESS.md` for the contracts):
//!
//! | ID  | invariant |
//! |-----|-----------|
//! | D01 | no `std::collections::HashMap/HashSet` in result-bearing crates (RandomState iteration order) |
//! | D02 | no wall clock / ambient randomness in simulation crates (simulated time + `DetRng` only) |
//! | D03 | no raw `std::env::var("RNUMA_*")` outside the blessed helpers in `experiment.rs` |
//! | E01 | every `RNUMA_*` literal in source has a row in README's env table, and vice versa |
//! | R01 | no `.unwrap()`/`.expect(` in the pool dispatch/recovery paths of `shard.rs` |
//! | P01 | the per-op replay path stays retired (`apply_op` confined to `exec_blocking`) |
//!
//! A finding is suppressed by an inline escape on the same or the
//! preceding line — `// lint: allow(ID, reason)` — with the reason
//! mandatory; the active escapes are inventoried in the report.

use crate::scan::{scan, FileScan, Kind, Tok};

/// Lint IDs that exist (used to reject `allow` escapes for unknown
/// lints; `L00` is the malformed-annotation diagnostic itself and is
/// deliberately not escapable).
pub const KNOWN_IDS: &[&str] = &["D01", "D02", "D03", "E01", "R01", "P01"];

/// Crates whose code computes simulated results: determinism lints
/// (D01/D02) apply to their `src/` trees. `bench` and the offline
/// shims are exempt by contract (wall-clock measurement is their job).
const SIM_CRATES: &[&str] = &["core", "proto", "mem", "net", "os", "sim", "workloads"];

/// The blessed env-access module: the only file allowed to call
/// `std::env::var` on an `RNUMA_*` name (D03).
const BLESSED_ENV_FILE: &str = "crates/core/src/experiment.rs";

/// Functions in `shard.rs` forming the pool dispatch/recovery region
/// where PR 6's typed-`PoolError` contract bans `.unwrap()`/`.expect(`
/// (R01). Closures inherit their enclosing named function.
const SHARD_RECOVERY_FNS: &[&str] = &[
    "worker_loop",
    "submit",
    "spawn_worker",
    "respawn_worker",
    "poison",
    "run_trace",
    "run_segments",
    "run_ops",
    "run_ops_log",
    "run_ops_windowed",
    "exec_span",
    "exec_window",
    "dispatch_shard",
    "collect_pending",
    "apply_effects",
    "recover_window",
    "exec_blocking",
    "fold_shard_metrics",
];

/// Wall-clock / ambient-randomness identifiers banned in simulation
/// crates (D02). `Instant`/`SystemTime` cover `::now()` and every
/// other use; `thread_rng`/`from_entropy` are OS-entropy seeding.
const AMBIENT_IDENTS: &[&str] = &["Instant", "SystemTime", "thread_rng", "from_entropy"];

/// One diagnostic: a violated invariant at `file:line`.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Lint ID (`D01` … `P01`, or `L00` for a malformed annotation).
    pub id: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

/// One parsed `// lint: allow(ID, reason)` escape.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The lint being waived.
    pub id: String,
    /// Workspace-relative path of the annotation.
    pub file: String,
    /// Line of the annotation comment.
    pub line: u32,
    /// The mandatory justification.
    pub reason: String,
    /// Lines the escape applies to (its own and the next code line).
    applies: Vec<u32>,
    /// Set when the escape suppressed at least one finding.
    pub used: bool,
}

/// The result of analyzing a set of files.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Surviving findings, sorted by `(file, line, id)`.
    pub findings: Vec<Finding>,
    /// Every annotation encountered (the escape inventory).
    pub allows: Vec<Allow>,
}

/// Analyzes `files` (`(workspace-relative path, contents)` pairs).
///
/// `readme` is the README's contents when the caller scanned the whole
/// workspace; the global lints (E01's registry cross-check and P01's
/// call-site census) only run in that mode, because they reason about
/// the tree as a whole.
#[must_use]
pub fn analyze(files: &[(String, String)], readme: Option<&str>) -> Analysis {
    let mut findings: Vec<Finding> = Vec::new();
    let mut allows: Vec<Allow> = Vec::new();
    // (file, line, ok_site) for every `apply_op` use outside machine.rs.
    let mut apply_op_sites: Vec<(String, u32, bool)> = Vec::new();
    // name -> first (file, line) for every "RNUMA_*" string literal.
    let mut env_literals: Vec<(String, String, u32)> = Vec::new();
    let mut have_machine_rs = false;

    for (rel, src) in files {
        let fs = scan(rel, src);
        collect_allows(&fs, &mut allows, &mut findings);
        lint_d01(&fs, &mut findings);
        lint_d02(&fs, &mut findings);
        lint_d03(&fs, &mut findings);
        lint_r01(&fs, &mut findings);
        lint_p01_file(&fs, &mut findings, &mut apply_op_sites);
        collect_env_literals(&fs, &mut env_literals);
        if rel == "crates/core/src/machine.rs" {
            have_machine_rs = true;
        }
    }

    if have_machine_rs {
        lint_p01_census(&apply_op_sites, &mut findings);
    }
    if let Some(readme) = readme {
        lint_e01(&env_literals, readme, &mut findings);
    }

    // Apply the escapes: a finding on a line an allow of the same ID
    // covers is suppressed (and the allow is marked used).
    findings.retain(|f| {
        for a in &mut allows {
            if a.id == f.id && a.file == f.file && a.applies.contains(&f.line) {
                a.used = true;
                return false;
            }
        }
        true
    });

    findings.sort_by(|a, b| (&a.file, a.line, &a.id).cmp(&(&b.file, b.line, &b.id)));
    Analysis { findings, allows }
}

/// Parses `// lint: allow(ID, reason)` escapes out of the file's line
/// comments. A comment that *attempts* the grammar but gets it wrong
/// (missing reason, unknown ID) is itself a finding (`L00`), so a typo
/// can never silently waive a lint.
fn collect_allows(fs: &FileScan, allows: &mut Vec<Allow>, findings: &mut Vec<Finding>) {
    for c in &fs.comments {
        let Some(pos) = c.text.find("lint:") else {
            continue;
        };
        let rest = c.text[pos + 5..].trim_start();
        let Some(body) = rest.strip_prefix("allow(") else {
            findings.push(Finding {
                id: "L00".into(),
                file: fs.rel.clone(),
                line: c.line,
                msg: format!(
                    "malformed lint annotation {rest:?} (grammar: lint: allow(ID, reason))"
                ),
            });
            continue;
        };
        let Some(close) = body.rfind(')') else {
            findings.push(Finding {
                id: "L00".into(),
                file: fs.rel.clone(),
                line: c.line,
                msg: "unclosed lint annotation (grammar: lint: allow(ID, reason))".into(),
            });
            continue;
        };
        let body = &body[..close];
        let (id, reason) = body.split_once(',').unwrap_or((body, ""));
        let (id, reason) = (id.trim(), reason.trim());
        if !KNOWN_IDS.contains(&id) {
            findings.push(Finding {
                id: "L00".into(),
                file: fs.rel.clone(),
                line: c.line,
                msg: format!("lint annotation names unknown lint {id:?} (known: {KNOWN_IDS:?})"),
            });
            continue;
        }
        if reason.is_empty() {
            findings.push(Finding {
                id: "L00".into(),
                file: fs.rel.clone(),
                line: c.line,
                msg: format!("lint: allow({id}) without a reason — the justification is mandatory"),
            });
            continue;
        }
        let mut applies = vec![c.line];
        if let Some(next) = fs.next_code_line(c.line) {
            applies.push(next);
        }
        allows.push(Allow {
            id: id.to_string(),
            file: fs.rel.clone(),
            line: c.line,
            reason: reason.to_string(),
            applies,
            used: false,
        });
    }
}

/// The crate name when `rel` is a `src/` file of a simulation crate.
fn sim_crate_src(rel: &str) -> Option<&str> {
    let rest = rel.strip_prefix("crates/")?;
    let (krate, sub) = rest.split_once('/')?;
    (SIM_CRATES.contains(&krate) && sub.starts_with("src/")).then_some(krate)
}

/// D01: `std::collections::HashMap`/`HashSet` in result-bearing code.
///
/// Matches both the import (`use std::collections::{…, HashMap}`) and
/// inline paths (`std::collections::HashMap::new()`); `#[cfg(test)]`
/// regions are exempt (tests assert membership, not iteration order).
fn lint_d01(fs: &FileScan, findings: &mut Vec<Finding>) {
    if sim_crate_src(&fs.rel).is_none() {
        return;
    }
    let t = &fs.toks;
    for i in 0..t.len() {
        if !(t[i].is_ident("std")
            && matches_path(t, i + 1, &["collections"])
            && t.get(i + 4).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 5).is_some_and(|x| x.is_punct(':')))
        {
            continue;
        }
        // Walk the rest of the path/use-tree until it ends.
        let mut j = i + 6; // first token past `std::collections::`
        while let Some(tok) = t.get(j) {
            match &tok.kind {
                Kind::Ident if tok.text == "HashMap" || tok.text == "HashSet" => {
                    if !fs.in_test(tok.line) {
                        findings.push(Finding {
                            id: "D01".into(),
                            file: fs.rel.clone(),
                            line: tok.line,
                            msg: format!(
                                "std::collections::{} iterates in RandomState order; \
                                 use rnuma_mem::fxmap::FxMap or BTreeMap/BTreeSet in \
                                 result-bearing crates",
                                tok.text
                            ),
                        });
                    }
                    j += 1;
                }
                Kind::Ident => j += 1,
                Kind::Punct(':' | '{' | '}' | ',' | '*') => j += 1,
                _ => break,
            }
        }
    }
}

/// D02: wall-clock and ambient-randomness identifiers in simulation
/// crates. Simulated time (`rnuma_sim::time`) and the seeded
/// `DetRng` are the only clocks/entropy the determinism contract
/// admits; the bench crate (which measures real time) is exempt.
fn lint_d02(fs: &FileScan, findings: &mut Vec<Finding>) {
    if sim_crate_src(&fs.rel).is_none() {
        return;
    }
    for (i, tok) in fs.toks.iter().enumerate() {
        let banned = (tok.kind == Kind::Ident && AMBIENT_IDENTS.contains(&tok.text.as_str()))
            || (tok.is_ident("rand")
                && fs.toks.get(i + 1).is_some_and(|x| x.is_punct(':'))
                && fs.toks.get(i + 2).is_some_and(|x| x.is_punct(':')));
        if banned {
            findings.push(Finding {
                id: "D02".into(),
                file: fs.rel.clone(),
                line: tok.line,
                msg: format!(
                    "`{}` is wall-clock/ambient entropy; simulation crates use \
                     simulated time and the seeded DetRng only",
                    tok.text
                ),
            });
        }
    }
}

/// D03: a raw `std::env::var("RNUMA_*")` / `var_os` read outside the
/// blessed helpers in `experiment.rs`. Routing every knob through one
/// module keeps the warn-once misconfiguration contract uniform and
/// the knob inventory greppable in one place.
fn lint_d03(fs: &FileScan, findings: &mut Vec<Finding>) {
    if fs.rel == BLESSED_ENV_FILE {
        return;
    }
    let t = &fs.toks;
    for i in 0..t.len() {
        let is_var = t[i].kind == Kind::Ident && (t[i].text == "var" || t[i].text == "var_os");
        if !is_var {
            continue;
        }
        // Require an `env::` path prefix so helper names like
        // `env_raw` never false-positive.
        let env_prefixed =
            i >= 3 && t[i - 1].is_punct(':') && t[i - 2].is_punct(':') && t[i - 3].is_ident("env");
        if !env_prefixed {
            continue;
        }
        let lit_is_knob = t.get(i + 1).is_some_and(|x| x.is_punct('('))
            && t.get(i + 2)
                .is_some_and(|x| x.kind == Kind::Str && x.text.starts_with("RNUMA_"));
        if lit_is_knob {
            findings.push(Finding {
                id: "D03".into(),
                file: fs.rel.clone(),
                line: t[i].line,
                msg: "raw std::env read of an RNUMA_* knob; go through the blessed \
                      helpers in crates/core/src/experiment.rs (env_usize / env_raw)"
                    .into(),
            });
        }
    }
}

/// R01: `.unwrap()` / `.expect(` inside the dispatch/recovery region
/// of `shard.rs`, where every failure must surface as a typed
/// `PoolError` (or degrade) rather than a panic.
fn lint_r01(fs: &FileScan, findings: &mut Vec<Finding>) {
    if fs.rel != "crates/core/src/shard.rs" {
        return;
    }
    walk_fns(&fs.toks, |t, i, enclosing| {
        let is_call = t[i].is_punct('.')
            && t.get(i + 1).is_some_and(|x| {
                x.kind == Kind::Ident && (x.text == "unwrap" || x.text == "expect")
            })
            && t.get(i + 2).is_some_and(|x| x.is_punct('('));
        if !is_call {
            return;
        }
        let line = t[i + 1].line;
        if fs.in_test(line) {
            return;
        }
        if let Some(f) = enclosing {
            if SHARD_RECOVERY_FNS.contains(&f) {
                findings.push(Finding {
                    id: "R01".into(),
                    file: fs.rel.clone(),
                    line,
                    msg: format!(
                        ".{}() in pool dispatch/recovery path `{f}`; the robustness \
                         contract wants a typed PoolError or a degrade, not a panic",
                        t[i + 1].text
                    ),
                });
            }
        }
    });
}

/// P01 (per-file half): in `machine.rs`, the retired per-op entry
/// points must not be re-published; everywhere else, census every
/// `apply_op` use and whether it is *the* blessed `exec_blocking`
/// call site (`self.machine.apply_op(op)` inside `exec_blocking`).
fn lint_p01_file(fs: &FileScan, findings: &mut Vec<Finding>, sites: &mut Vec<(String, u32, bool)>) {
    let t = &fs.toks;
    if fs.rel == "crates/core/src/machine.rs" {
        for i in 0..t.len() {
            let republished = t[i].is_ident("pub")
                && t.get(i + 1).is_some_and(|x| x.is_ident("fn"))
                && t.get(i + 2).is_some_and(|x| {
                    x.kind == Kind::Ident
                        && matches!(x.text.as_str(), "apply_op" | "replay" | "replay_segments")
                });
            if republished {
                findings.push(Finding {
                    id: "P01".into(),
                    file: fs.rel.clone(),
                    line: t[i + 2].line,
                    msg: format!(
                        "retired per-op replay entry point `{}` is public again on \
                         Machine; replay goes through apply_batch/replay_segment",
                        t[i + 2].text
                    ),
                });
            }
        }
        return;
    }
    walk_fns(t, |t, i, enclosing| {
        if !t[i].is_ident("apply_op") {
            return;
        }
        let line = t[i].line;
        let called = t.get(i + 1).is_some_and(|x| x.is_punct('('));
        let via_machine = i >= 4
            && t[i - 1].is_punct('.')
            && t[i - 2].is_ident("machine")
            && t[i - 3].is_punct('.')
            && t[i - 4].is_ident("self");
        let ok_site = called
            && via_machine
            && fs.rel == "crates/core/src/shard.rs"
            && enclosing == Some("exec_blocking")
            && !fs.in_test(line);
        sites.push((fs.rel.clone(), line, ok_site));
    });
}

/// P01 (global half): outside `machine.rs` there must be *exactly one*
/// `apply_op` site — the sharded executor's serial between-window leg.
fn lint_p01_census(sites: &[(String, u32, bool)], findings: &mut Vec<Finding>) {
    for (file, line, ok) in sites {
        if !ok {
            findings.push(Finding {
                id: "P01".into(),
                file: file.clone(),
                line: *line,
                msg: "per-op replay caller outside ShardedMachine::exec_blocking; \
                      replay through apply_batch/replay_segment instead"
                    .into(),
            });
        }
    }
    let blessed = sites.iter().filter(|(_, _, ok)| *ok).count();
    if blessed != 1 {
        findings.push(Finding {
            id: "P01".into(),
            file: "crates/core/src/shard.rs".into(),
            line: 1,
            msg: format!(
                "expected exactly one exec_blocking apply_op call site, found {blessed} \
                 — the serial between-window leg moved or was duplicated"
            ),
        });
    }
}

/// Collects every `RNUMA_[A-Z0-9_]+` name occurring in string literals.
fn collect_env_literals(fs: &FileScan, out: &mut Vec<(String, String, u32)>) {
    for tok in &fs.toks {
        if tok.kind != Kind::Str {
            continue;
        }
        for name in extract_env_names(&tok.text) {
            out.push((name, fs.rel.clone(), tok.line));
        }
    }
}

/// The `RNUMA_*` names embedded in one string.
fn extract_env_names(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = s;
    while let Some(pos) = rest.find("RNUMA_") {
        let tail = &rest[pos + 6..];
        let end = tail
            .find(|c: char| !(c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_'))
            .unwrap_or(tail.len());
        if end > 0 {
            out.push(format!("RNUMA_{}", tail[..end].trim_end_matches('_')));
        }
        rest = &rest[pos + 6..];
    }
    out
}

/// E01: the env-knob registry cross-check. Every `RNUMA_*` literal in
/// source must have a row in README's env table (`| \`RNUMA_…\` | … |`),
/// and every row must correspond to a knob the source still reads —
/// doc drift dies structurally instead of by review.
fn lint_e01(source: &[(String, String, u32)], readme: &str, findings: &mut Vec<Finding>) {
    let mut table: Vec<(String, u32)> = Vec::new();
    for (n, line) in readme.lines().zip(1u32..) {
        let Some(rest) = n.trim_start().strip_prefix("| `RNUMA_") else {
            continue;
        };
        let end = rest
            .find(|c: char| !(c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_'))
            .unwrap_or(rest.len());
        table.push((format!("RNUMA_{}", &rest[..end]), line));
    }
    for (name, file, line) in source {
        if !table.iter().any(|(t, _)| t == name) {
            findings.push(Finding {
                id: "E01".into(),
                file: file.clone(),
                line: *line,
                msg: format!("{name} is referenced in source but has no row in README's env table"),
            });
        }
    }
    let mut seen: Vec<&str> = Vec::new();
    for (name, line) in &table {
        if seen.contains(&name.as_str()) {
            continue;
        }
        seen.push(name);
        if !source.iter().any(|(n, _, _)| n == name) {
            findings.push(Finding {
                id: "E01".into(),
                file: "README.md".into(),
                line: *line,
                msg: format!("README env table documents {name}, which no source file references"),
            });
        }
    }
}

/// `true` when the tokens at `i` spell `:: seg` for each `segs` entry.
fn matches_path(t: &[Tok], i: usize, segs: &[&str]) -> bool {
    let mut j = i;
    for seg in segs {
        if !(t.get(j).is_some_and(|x| x.is_punct(':'))
            && t.get(j + 1).is_some_and(|x| x.is_punct(':'))
            && t.get(j + 2).is_some_and(|x| x.is_ident(seg)))
        {
            return false;
        }
        j += 3;
    }
    true
}

/// Walks the token stream maintaining the innermost *named* enclosing
/// function, calling `f(tokens, index, enclosing_fn_name)` per token.
/// Closures and blocks inherit the named function they sit in —
/// exactly the attribution the region lints want.
fn walk_fns(t: &[Tok], mut f: impl FnMut(&[Tok], usize, Option<&str>)) {
    let mut stack: Vec<(String, i32)> = Vec::new();
    let mut pending: Option<String> = None;
    let mut depth = 0i32;
    for i in 0..t.len() {
        match &t[i].kind {
            Kind::Ident if t[i].text == "fn" => {
                if let Some(next) = t.get(i + 1) {
                    if next.kind == Kind::Ident {
                        pending = Some(next.text.clone());
                    }
                }
            }
            Kind::Punct('{') => {
                depth += 1;
                if let Some(name) = pending.take() {
                    stack.push((name, depth));
                }
            }
            Kind::Punct('}') => {
                if stack.last().is_some_and(|(_, d)| *d == depth) {
                    stack.pop();
                }
                depth -= 1;
            }
            Kind::Punct(';') => {
                pending = None;
            }
            _ => {}
        }
        f(t, i, stack.last().map(|(n, _)| n.as_str()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(rel: &str, src: &str) -> Analysis {
        analyze(&[(rel.to_string(), src.to_string())], None)
    }

    fn ids(a: &Analysis) -> Vec<&str> {
        a.findings.iter().map(|f| f.id.as_str()).collect()
    }

    // ---- D01 ---------------------------------------------------

    #[test]
    fn d01_fires_on_import_and_inline_path() {
        let a = one(
            "crates/proto/src/x.rs",
            "use std::collections::HashMap;\nfn f() { let s = std::collections::HashSet::<u8>::new(); }",
        );
        assert_eq!(ids(&a), ["D01", "D01"]);
        assert_eq!(a.findings[0].line, 1);
        assert_eq!(a.findings[1].line, 2);
    }

    #[test]
    fn d01_fires_inside_brace_imports() {
        let a = one(
            "crates/os/src/x.rs",
            "use std::collections::{BTreeMap, HashMap};",
        );
        assert_eq!(ids(&a), ["D01"]);
    }

    #[test]
    fn d01_silent_on_btree_tests_and_nonsim_crates() {
        let clean = one("crates/mem/src/x.rs", "use std::collections::BTreeMap;");
        assert!(clean.findings.is_empty());
        let test_code = one(
            "crates/mem/src/x.rs",
            "#[cfg(test)]\nmod tests { use std::collections::HashMap; }",
        );
        assert!(test_code.findings.is_empty(), "{:?}", test_code.findings);
        let bench = one("crates/bench/src/x.rs", "use std::collections::HashMap;");
        assert!(bench.findings.is_empty());
    }

    #[test]
    fn d01_honors_a_reasoned_allow() {
        let a = one(
            "crates/net/src/x.rs",
            "// lint: allow(D01, order never observed; keys are compared only)\nuse std::collections::HashSet;",
        );
        assert!(a.findings.is_empty(), "{:?}", a.findings);
        assert_eq!(a.allows.len(), 1);
        assert!(a.allows[0].used);
    }

    // ---- D02 ---------------------------------------------------

    #[test]
    fn d02_fires_on_wall_clock_and_entropy() {
        let a = one(
            "crates/sim/src/x.rs",
            "fn f() { let t = std::time::Instant::now(); let r = rand::thread_rng(); }",
        );
        assert!(ids(&a).contains(&"D02"));
        assert!(a.findings.len() >= 2, "{:?}", a.findings);
    }

    #[test]
    fn d02_silent_in_bench_and_on_duration() {
        let bench = one(
            "crates/bench/src/x.rs",
            "fn f() { let t = std::time::Instant::now(); }",
        );
        assert!(bench.findings.is_empty());
        let dur = one(
            "crates/sim/src/x.rs",
            "fn f() { let d = std::time::Duration::from_millis(5); }",
        );
        assert!(dur.findings.is_empty());
    }

    // ---- D03 ---------------------------------------------------

    #[test]
    fn d03_fires_on_raw_env_reads_outside_experiment() {
        let a = one(
            "crates/core/src/other.rs",
            r#"fn f() { let v = std::env::var("RNUMA_SHARDS"); let w = std::env::var_os("RNUMA_EXEC"); }"#,
        );
        assert_eq!(ids(&a), ["D03", "D03"]);
    }

    #[test]
    fn d03_silent_in_experiment_and_on_helpers_and_other_vars() {
        let blessed = one(
            "crates/core/src/experiment.rs",
            r#"fn f() { let v = std::env::var("RNUMA_SHARDS"); }"#,
        );
        assert!(blessed.findings.is_empty());
        let helper = one(
            "crates/core/src/other.rs",
            r#"fn f() { let v = crate::experiment::env_raw("RNUMA_SHARDS"); }"#,
        );
        assert!(helper.findings.is_empty(), "{:?}", helper.findings);
        let other_var = one(
            "crates/core/src/other.rs",
            r#"fn f() { let v = std::env::var("PATH"); }"#,
        );
        assert!(other_var.findings.is_empty());
    }

    // ---- R01 ---------------------------------------------------

    #[test]
    fn r01_fires_in_recovery_fns_only() {
        let a = one(
            "crates/core/src/shard.rs",
            "fn recover_window(&mut self) { self.x.lock().unwrap(); }\n\
             fn elsewhere() { foo().unwrap(); }",
        );
        assert_eq!(ids(&a), ["R01"]);
        assert_eq!(a.findings[0].line, 1);
    }

    #[test]
    fn r01_silent_on_unwrap_or_else_tests_and_other_files() {
        let a = one(
            "crates/core/src/shard.rs",
            "fn submit(&self) { self.q.lock().unwrap_or_else(std::sync::PoisonError::into_inner); }\n\
             #[cfg(test)]\nmod tests { fn exec_window() { x().unwrap(); } }",
        );
        assert!(a.findings.is_empty(), "{:?}", a.findings);
        let other = one("crates/core/src/trace.rs", "fn submit() { x().unwrap(); }");
        assert!(other.findings.is_empty());
    }

    // ---- P01 ---------------------------------------------------

    #[test]
    fn p01_fires_on_republished_entry_points_and_stray_callers() {
        let a = analyze(
            &[
                (
                    "crates/core/src/machine.rs".into(),
                    "impl Machine { pub fn apply_op(&mut self, op: &TraceOp) {} }".into(),
                ),
                (
                    "crates/core/src/other.rs".into(),
                    "fn f(m: &mut Machine, op: &TraceOp) { m.apply_op(op); }".into(),
                ),
            ],
            None,
        );
        let got = ids(&a);
        assert!(got.iter().filter(|i| **i == "P01").count() >= 2, "{got:?}");
    }

    #[test]
    fn p01_accepts_the_blessed_tree_shape() {
        let a = analyze(
            &[
                (
                    "crates/core/src/machine.rs".into(),
                    "impl Machine { pub(crate) fn apply_op(&mut self, op: &TraceOp) {} \
                     pub fn replay_segment(&mut self) {} }"
                        .into(),
                ),
                (
                    "crates/core/src/shard.rs".into(),
                    "impl ShardedMachine { fn exec_blocking(&mut self, op: &TraceOp) { \
                     self.machine.apply_op(op); } }"
                        .into(),
                ),
            ],
            None,
        );
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    // ---- E01 ---------------------------------------------------

    const README_OK: &str = "| `RNUMA_GOOD=n` | a knob |\n";

    #[test]
    fn e01_cross_checks_both_directions() {
        let a = analyze(
            &[(
                "crates/core/src/x.rs".into(),
                r#"fn f() { let v = crate::experiment::env_raw("RNUMA_ROGUE"); }"#.into(),
            )],
            Some(README_OK),
        );
        let msgs: Vec<&str> = a.findings.iter().map(|f| f.msg.as_str()).collect();
        assert_eq!(ids(&a), ["E01", "E01"], "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("RNUMA_ROGUE")));
        assert!(msgs.iter().any(|m| m.contains("RNUMA_GOOD")));
    }

    #[test]
    fn e01_silent_when_registry_matches() {
        let a = analyze(
            &[(
                "crates/core/src/x.rs".into(),
                r#"fn f() { let v = crate::experiment::env_raw("RNUMA_GOOD"); }"#.into(),
            )],
            Some(README_OK),
        );
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    // ---- annotations -------------------------------------------

    #[test]
    fn reasonless_or_unknown_allows_are_findings() {
        let a = one(
            "crates/core/src/other.rs",
            "// lint: allow(D03)\n// lint: allow(Z99, because)\nfn f() {}",
        );
        assert_eq!(ids(&a), ["L00", "L00"]);
    }

    #[test]
    fn unused_allows_are_inventoried_not_fatal() {
        let a = one(
            "crates/core/src/other.rs",
            "// lint: allow(D03, spare)\nfn f() {}",
        );
        assert!(a.findings.is_empty());
        assert_eq!(a.allows.len(), 1);
        assert!(!a.allows[0].used);
    }
}
