//! End-to-end fixture drills for the `rnuma-lint` binary.
//!
//! Each drill materializes a miniature workspace tree in a temp
//! directory, runs the real binary over it with `--root`, and asserts
//! on the exit status and the `file:line` diagnostics. The seeded tree
//! violates **all six** lint IDs at known lines; the clean tree shows
//! the blessed shape (plus one reasoned escape) and must come out
//! green.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_rnuma-lint")
}

fn fresh_tree(case: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("rnuma-lint-fix-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create fixture root");
    root
}

fn put(root: &Path, rel: &str, contents: &str) {
    let path = root.join(rel);
    std::fs::create_dir_all(path.parent().expect("fixture files sit in a directory"))
        .expect("create fixture dir");
    std::fs::write(path, contents).expect("write fixture file");
}

fn run(root: &Path, extra: &[&str]) -> (bool, String) {
    let out = Command::new(bin())
        .arg("--check")
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("run rnuma-lint");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn seeded_violations_fire_all_six_lints_with_file_line_diagnostics() {
    let root = fresh_tree("bad");
    put(
        &root,
        "README.md",
        "| `RNUMA_SHARDS=n` | a knob |\n| `RNUMA_STALE=1` | documented but unread |\n",
    );
    // D01: std HashMap in a result-bearing crate.
    put(
        &root,
        "crates/proto/src/bad_map.rs",
        "use std::collections::HashMap;\n",
    );
    // D02: wall clock in a simulation crate.
    put(
        &root,
        "crates/sim/src/clock.rs",
        "fn now() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    // D03: raw env read outside experiment.rs; the name also has a
    // README row, so it does NOT double as an E01 violation.
    put(
        &root,
        "crates/core/src/knobs.rs",
        "fn f() -> Option<String> { std::env::var(\"RNUMA_SHARDS\").ok() }\n",
    );
    // E01 (source side): a knob with no README row.
    put(
        &root,
        "crates/core/src/rogue.rs",
        "const K: &str = \"RNUMA_ROGUE\";\n",
    );
    // P01: the retired entry point re-published, and a stray caller.
    put(
        &root,
        "crates/core/src/machine.rs",
        "impl Machine { pub fn apply_op(&mut self, op: &TraceOp) {} }\n",
    );
    put(
        &root,
        "crates/core/src/stray.rs",
        "fn f(m: &mut Machine, op: &TraceOp) { m.apply_op(op); }\n",
    );
    // R01: a panic in the recovery region of shard.rs.
    put(
        &root,
        "crates/core/src/shard.rs",
        "fn recover_window(&mut self) { self.lock.lock().unwrap(); }\n",
    );

    let (ok, text) = run(&root, &[]);
    assert!(!ok, "seeded tree must fail:\n{text}");
    for (needle, why) in [
        ("crates/proto/src/bad_map.rs:1: D01", "std HashMap import"),
        ("crates/sim/src/clock.rs:1: D02", "Instant in sim crate"),
        ("crates/core/src/knobs.rs:1: D03", "raw env read"),
        ("crates/core/src/rogue.rs:1: E01", "knob without README row"),
        ("README.md:2: E01", "README row without source reader"),
        ("crates/core/src/machine.rs:1: P01", "re-published apply_op"),
        ("crates/core/src/stray.rs:1: P01", "stray apply_op caller"),
        ("crates/core/src/shard.rs:1: R01", "unwrap in recovery path"),
    ] {
        assert!(text.contains(needle), "missing {why} ({needle}):\n{text}");
    }

    // JSON mode reports the same findings machine-readably.
    let (ok, json) = run(&root, &["--format", "json"]);
    assert!(!ok);
    assert!(json.contains("\"ok\":false"), "{json}");
    for id in ["D01", "D02", "D03", "E01", "R01", "P01"] {
        assert!(
            json.contains(&format!("\"id\":\"{id}\"")),
            "{id} in json:\n{json}"
        );
    }

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn clean_tree_with_reasoned_escape_exits_zero_and_prints_the_inventory() {
    let root = fresh_tree("clean");
    put(&root, "README.md", "| `RNUMA_SHARDS=n` | a knob |\n");
    // The blessed tree shape for P01…
    put(
        &root,
        "crates/core/src/machine.rs",
        "impl Machine { pub(crate) fn apply_op(&mut self, op: &TraceOp) {} }\n",
    );
    put(
        &root,
        "crates/core/src/shard.rs",
        "impl ShardedMachine { fn exec_blocking(&mut self, op: &TraceOp) { self.machine.apply_op(op); } }\n",
    );
    // …the blessed env helper for D03…
    put(
        &root,
        "crates/core/src/experiment.rs",
        "pub fn env_raw(name: &str) -> Option<String> { std::env::var(name).ok() }\n\
         pub fn shards() -> Option<String> { std::env::var(\"RNUMA_SHARDS\").ok() }\n",
    );
    // …deterministic maps, std maps only under cfg(test)…
    put(
        &root,
        "crates/proto/src/good_map.rs",
        "use std::collections::BTreeMap;\n#[cfg(test)]\nmod tests { use std::collections::HashMap; }\n",
    );
    // …and a reasoned escape on an otherwise-red line.
    put(
        &root,
        "crates/net/src/escaped.rs",
        "// lint: allow(D01, membership-only set, iteration order never observed)\n\
         use std::collections::HashSet;\n",
    );

    let (ok, text) = run(&root, &[]);
    assert!(ok, "clean tree must pass:\n{text}");
    assert!(text.contains("escape inventory"), "{text}");
    assert!(
        text.contains("allow D01 crates/net/src/escaped.rs:1"),
        "{text}"
    );
    assert!(text.contains("0 finding(s)"), "{text}");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn reasonless_escape_is_itself_a_finding() {
    let root = fresh_tree("noreason");
    put(&root, "README.md", "\n");
    put(
        &root,
        "crates/net/src/escaped.rs",
        "// lint: allow(D01)\nuse std::collections::HashSet;\n",
    );
    let (ok, text) = run(&root, &[]);
    assert!(!ok, "reasonless escape must fail:\n{text}");
    assert!(text.contains("L00"), "{text}");
    assert!(text.contains("D01"), "the escape must not suppress: {text}");
    let _ = std::fs::remove_dir_all(&root);
}
