//! The acceptance drill: `rnuma-lint --check` exits 0 on the real
//! workspace. Any lint violation introduced anywhere in `crates/`,
//! `tests/`, or `examples/` fails this test (and the CI lane) with a
//! `file:line` diagnostic.

use std::process::Command;

#[test]
fn the_real_workspace_is_lint_clean() {
    // tools/lint -> tools -> workspace root.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate lives two levels below the workspace root");
    let out = Command::new(env!("CARGO_BIN_EXE_rnuma-lint"))
        .arg("--check")
        .arg("--root")
        .arg(root)
        .output()
        .expect("run rnuma-lint");
    assert!(
        out.status.success(),
        "rnuma-lint --check found violations:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    // JSON mode agrees and is well-formed enough to machine-read.
    let out = Command::new(env!("CARGO_BIN_EXE_rnuma-lint"))
        .args(["--check", "--format", "json", "--root"])
        .arg(root)
        .output()
        .expect("run rnuma-lint --format json");
    assert!(out.status.success());
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.starts_with("{\"ok\":true"), "{json}");
    assert!(json.contains("\"findings\":[]"), "{json}");
}
